//! A lightweight recursive-descent structural parser over the
//! [`crate::lexer`] token stream.
//!
//! This is deliberately **not** a full Rust grammar: the semantic rule
//! families (H hot-path, D2 determinism-dataflow, A API-hygiene) need
//! exactly five structural facts per file — where functions begin and
//! end (and which `impl` they belong to), where loops nest, where
//! calls and allocation-shaped expressions sit inside them, what a
//! function's return type mentions, and which constant string sets /
//! type aliases the file declares. Everything else (expressions,
//! patterns, generics) is skipped by token-bracket matching, so the
//! parser is total: any input produces *some* AST, and a half-edited
//! file still lints.
//!
//! The design mirrors the lexer's: cheap structural regularities over
//! type information, with the committed baseline absorbing the grey
//! zone.

use crate::lexer::{Tok, TokKind};

/// Method/function names that allocate on the heap. A call site with
/// one of these names inside a hot loop is the H-family's prime
/// target: per-event transient heap traffic.
pub const ALLOC_METHODS: &[&str] = &["clone", "to_string", "to_owned", "to_vec", "collect"];

/// `Type::ctor` pairs that allocate.
pub const ALLOC_CTORS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("String", "new"),
    ("String", "with_capacity"),
    ("String", "from"),
    ("Box", "new"),
];

/// Macros that allocate.
pub const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Method names too common to draw conservative call-graph edges from
/// an unqualified `.name(…)` call — they would connect every container
/// in the workspace to every other. Workspace functions with these
/// names participate in the graph only through qualified
/// (`Type::name`) calls or a direct `hot-root` annotation.
pub const COMMON_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_mut",
    "as_ref",
    "as_str",
    "binary_search",
    "borrow",
    "borrow_mut",
    "ceil",
    "chain",
    "chunks",
    "clear",
    "clone",
    "clone_from",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "count",
    "drain",
    "ends_with",
    "enumerate",
    "eq",
    "err",
    "expect",
    "extend",
    "filter",
    "find",
    "first",
    "flat_map",
    "floor",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "last",
    "len",
    "lock",
    "map",
    "max",
    "min",
    "ne",
    "new",
    "next",
    "ok",
    "parse",
    "partial_cmp",
    "pop",
    "pop_front",
    "position",
    "push",
    "push_back",
    "read",
    "remove",
    "replace",
    "retain",
    "rev",
    "round",
    "sort",
    "sort_by",
    "sort_by_key",
    "split",
    "starts_with",
    "sum",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "windows",
    "write",
    "zip",
];

/// One call expression inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee name (last path segment / method name).
    pub name: String,
    /// `Foo` in `Foo::name(…)` — the token two places left of the
    /// name across a `::`.
    pub qualifier: Option<String>,
    /// `.name(…)` receiver-method form.
    pub method: bool,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Number of enclosing loops *within the enclosing function*.
    pub loop_depth: u32,
}

/// One allocation-shaped expression inside a function body.
#[derive(Clone, Debug)]
pub struct AllocSite {
    /// Human-readable shape: `".clone()"`, `"Vec::new"`, `"format!"`.
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Number of enclosing loops within the enclosing function.
    pub loop_depth: u32,
}

/// One `.sum()` accumulation site.
#[derive(Clone, Debug)]
pub struct SumSite {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Turbofish element type when written (`.sum::<u64>()` → `u64`).
    pub turbofish: Option<String>,
}

/// One function definition (free or inside an `impl`).
#[derive(Clone, Debug, Default)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` block's type name, when any.
    pub impl_type: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Line of the body's closing brace.
    pub end_line: u32,
    /// Whether a `hot-root` directive comment names this fn.
    pub hot_root: bool,
    /// Folded-profile frame hint from `hot-root(<frame>)`, if given.
    pub root_frame: Option<String>,
    /// Return-type tokens (joined), empty for `()`.
    pub ret: String,
    /// Call expressions in the body.
    pub calls: Vec<CallSite>,
    /// Allocation-shaped expressions in the body.
    pub allocs: Vec<AllocSite>,
    /// `.sum()` sites in the body.
    pub sums: Vec<SumSite>,
    /// Literal frame names passed to `pq_prof::{span,tick,span_dyn,
    /// worker_span}` in the body (format literals keep their prefix
    /// before `{`), used to map findings onto measured profiles.
    pub span_literals: Vec<String>,
    /// Body fans out over `pq_par` (`par_map`/`par_map_indexed`/
    /// `try_par_map`).
    pub has_par_call: bool,
    has_body: bool,
}

/// A type alias or `use … as` rename.
#[derive(Clone, Debug)]
pub struct AliasDef {
    /// The introduced name.
    pub name: String,
    /// The aliased tokens mention `HashMap`/`HashSet`.
    pub aliases_hash: bool,
    /// 1-based line of the declaration.
    pub line: u32,
}

/// A `const NAME: … = &[ "…", … ];` string-set declaration — how the
/// A-family reads its registries (`KNOWN_VARS`, `METRIC_NAMES`,
/// `SPAN_NAMES`) straight out of the source being linted.
#[derive(Clone, Debug)]
pub struct ConstStrSet {
    /// Constant name.
    pub name: String,
    /// The string literals, unquoted.
    pub values: Vec<String>,
}

/// Everything the semantic rules need to know about one file.
#[derive(Clone, Debug, Default)]
pub struct FileAst {
    /// Function definitions with bodies, in source order.
    pub fns: Vec<FnDef>,
    /// Type aliases / use-renames.
    pub aliases: Vec<AliasDef>,
    /// Constant string-set declarations.
    pub const_sets: Vec<ConstStrSet>,
}

/// A `hot-root` annotation parsed from the comments by the engine:
/// `(line, optional profile-frame hint)`.
#[derive(Clone, Debug)]
pub struct HotRootAnn {
    /// 1-based line the annotation comment sits on.
    pub line: u32,
    /// `hot-root(<frame>)` hint, when given.
    pub frame: Option<String>,
}

/// What a `{` opens.
#[derive(Clone, Debug)]
enum ScopeKind {
    Plain,
    Loop,
    Fn(usize),
    Impl(Option<String>),
}

/// Pending item announced by a keyword, resolved at the next `{` (or
/// dropped at `;`).
#[derive(Clone, Debug)]
enum Pending {
    Loop,
    Fn(usize),
    Impl(Option<String>),
}

fn is_stmt_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "fn"
            | "let"
            | "mut"
            | "move"
            | "in"
            | "as"
            | "ref"
            | "use"
            | "mod"
            | "pub"
            | "where"
            | "impl"
            | "dyn"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "unsafe"
            | "await"
    )
}

/// Skip an optional `::<…>` turbofish starting at `i`; returns the
/// index after it (and the joined contents) or `(i, None)`.
pub(crate) fn skip_turbofish(toks: &[Tok], i: usize) -> (usize, Option<String>) {
    if i + 2 < toks.len()
        && toks[i].text == ":"
        && toks[i + 1].text == ":"
        && toks[i + 2].text == "<"
    {
        let mut depth = 0usize;
        let mut j = i + 2;
        let mut body = String::new();
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return (j + 1, Some(body));
                    }
                }
                t => {
                    body.push_str(t);
                }
            }
            j += 1;
        }
        (j, Some(body))
    } else {
        (i, None)
    }
}

/// Parse one file's token stream into a [`FileAst`]. `hot_roots` are
/// the annotation lines the engine extracted from comments; each
/// attaches to the first `fn` within the three lines below it
/// (attributes and doc lines in between are fine).
pub fn parse(toks: &[Tok], hot_roots: &[HotRootAnn]) -> FileAst {
    let mut ast = FileAst::default();
    let mut scopes: Vec<ScopeKind> = Vec::new();
    let mut pending: Option<Pending> = None;
    // Return-type capture while a fn signature is pending.
    let mut in_ret = false;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" if t.kind == TokKind::Punct => {
                let kind = match pending.take() {
                    Some(Pending::Loop) => ScopeKind::Loop,
                    Some(Pending::Fn(fi)) => {
                        ast.fns[fi].has_body = true;
                        ScopeKind::Fn(fi)
                    }
                    Some(Pending::Impl(ty)) => ScopeKind::Impl(ty),
                    None => ScopeKind::Plain,
                };
                in_ret = false;
                scopes.push(kind);
                i += 1;
                continue;
            }
            "}" if t.kind == TokKind::Punct => {
                if let Some(ScopeKind::Fn(fi)) = scopes.pop() {
                    ast.fns[fi].end_line = t.line;
                }
                i += 1;
                continue;
            }
            ";" if t.kind == TokKind::Punct => {
                // A bodyless fn decl (trait method) or a dropped
                // pending loop-in-type-position.
                pending = None;
                in_ret = false;
                i += 1;
                continue;
            }
            _ => {}
        }

        // Return-type capture between `->` and the body `{`.
        if matches!(pending, Some(Pending::Fn(_))) {
            if t.text == "-" && toks.get(i + 1).is_some_and(|n| n.text == ">") {
                in_ret = true;
                i += 2;
                continue;
            }
            if in_ret {
                if let Some(Pending::Fn(fi)) = &pending {
                    if t.kind == TokKind::Ident {
                        if !ast.fns[*fi].ret.is_empty() {
                            ast.fns[*fi].ret.push(' ');
                        }
                        ast.fns[*fi].ret.push_str(&t.text);
                    }
                }
            }
        }

        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }

        match t.text.as_str() {
            "impl" if pending.is_none() => {
                pending = Some(Pending::Impl(impl_type_name(toks, i + 1)));
                i += 1;
                continue;
            }
            "fn" => {
                if let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    let impl_type = scopes.iter().rev().find_map(|s| match s {
                        ScopeKind::Impl(ty) => Some(ty.clone()),
                        _ => None,
                    });
                    ast.fns.push(FnDef {
                        name: name_tok.text.clone(),
                        impl_type: impl_type.flatten(),
                        line: t.line,
                        end_line: t.line,
                        ..FnDef::default()
                    });
                    pending = Some(Pending::Fn(ast.fns.len() - 1));
                    i += 2;
                    continue;
                }
            }
            "for" | "while" | "loop" if pending.is_none() => {
                pending = Some(Pending::Loop);
                i += 1;
                continue;
            }
            "type" if pending.is_none() => {
                if let Some((alias, skip)) = parse_type_alias(toks, i) {
                    ast.aliases.push(alias);
                    i += skip;
                    continue;
                }
            }
            "use" if pending.is_none() => {
                let (renames, skip) = parse_use_renames(toks, i);
                ast.aliases.extend(renames);
                i += skip;
                continue;
            }
            "const" if pending.is_none() => {
                if let Some((set, skip)) = parse_const_str_set(toks, i) {
                    ast.const_sets.push(set);
                    i += skip;
                    continue;
                }
            }
            _ => {}
        }

        // Body-level facts: only inside a function, never while a
        // signature or impl header is still pending.
        let fn_idx = scopes.iter().rev().find_map(|s| match s {
            ScopeKind::Fn(fi) => Some(*fi),
            _ => None,
        });
        let in_sig = matches!(pending, Some(Pending::Fn(_) | Pending::Impl(_)));
        if let (Some(fi), false) = (fn_idx, in_sig) {
            let loop_depth = loop_depth_of(&scopes);
            scan_body_token(toks, i, &mut ast.fns[fi], loop_depth);
        }
        i += 1;
    }
    ast.fns.retain(|f| f.has_body);
    // Attach hot-root annotations: each binds to the *first* fn
    // within the three lines below it (attributes in between are
    // fine), never to later siblings.
    for ann in hot_roots {
        if let Some(f) = ast
            .fns
            .iter_mut()
            .filter(|f| f.line > ann.line && f.line <= ann.line + 3)
            .min_by_key(|f| f.line)
        {
            f.hot_root = true;
            if f.root_frame.is_none() {
                f.root_frame = ann.frame.clone();
            }
        }
    }
    ast
}

/// Loops enclosing the current position, counted down to (not past)
/// the innermost function scope.
fn loop_depth_of(scopes: &[ScopeKind]) -> u32 {
    let mut depth = 0u32;
    for s in scopes.iter().rev() {
        match s {
            ScopeKind::Loop => depth += 1,
            ScopeKind::Fn(_) => break,
            _ => {}
        }
    }
    depth
}

/// The type name an `impl` header introduces: `impl Foo`,
/// `impl<T> Foo<T>`, `impl Trait for Foo`.
fn impl_type_name(toks: &[Tok], mut i: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut first_ident: Option<String> = None;
    let mut after_for = false;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" | ";" if angle == 0 => break,
            "<" => angle += 1,
            ">" => angle -= 1,
            "for" if angle == 0 => {
                after_for = true;
                first_ident = None;
            }
            _ => {
                if t.kind == TokKind::Ident && angle == 0 && first_ident.is_none() {
                    first_ident = Some(t.text.clone());
                    if after_for {
                        return first_ident;
                    }
                }
            }
        }
        i += 1;
    }
    first_ident
}

/// `type X = …;` — returns the alias and the token count to skip.
fn parse_type_alias(toks: &[Tok], i: usize) -> Option<(AliasDef, usize)> {
    let name_tok = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident)?;
    // Associated-type bounds (`type Item;`) have no `=` before `;`.
    let mut j = i + 2;
    let mut saw_eq = false;
    let mut hash = false;
    while j < toks.len() && toks[j].text != ";" {
        match toks[j].text.as_str() {
            "=" => saw_eq = true,
            "HashMap" | "HashSet" => hash = true,
            _ => {}
        }
        j += 1;
    }
    saw_eq.then(|| {
        (
            AliasDef {
                name: name_tok.text.clone(),
                aliases_hash: hash,
                line: name_tok.line,
            },
            j - i,
        )
    })
}

/// `use …::HashMap as X, …;` — every `as`-rename in the use tree.
fn parse_use_renames(toks: &[Tok], i: usize) -> (Vec<AliasDef>, usize) {
    let mut out = Vec::new();
    let mut j = i + 1;
    while j < toks.len() && toks[j].text != ";" {
        if toks[j].text == "as" && toks[j].kind == TokKind::Ident {
            let renamed_from = toks.get(j.wrapping_sub(1));
            if let Some(name_tok) = toks.get(j + 1).filter(|n| n.kind == TokKind::Ident) {
                out.push(AliasDef {
                    name: name_tok.text.clone(),
                    aliases_hash: renamed_from
                        .is_some_and(|p| p.text == "HashMap" || p.text == "HashSet"),
                    line: name_tok.line,
                });
            }
        }
        j += 1;
    }
    (out, j - i)
}

/// `const NAME: … = &[ "…", … ];` — a declared string set.
fn parse_const_str_set(toks: &[Tok], i: usize) -> Option<(ConstStrSet, usize)> {
    let name_tok = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident)?;
    let mut j = i + 2;
    let mut values = Vec::new();
    let mut saw_bracket = false;
    while j < toks.len() && toks[j].text != ";" {
        match toks[j].kind {
            TokKind::Punct if toks[j].text == "[" => saw_bracket = true,
            TokKind::Str if saw_bracket => {
                values.push(toks[j].text.trim_matches('"').to_string());
            }
            _ => {}
        }
        j += 1;
    }
    (saw_bracket && !values.is_empty()).then(|| {
        (
            ConstStrSet {
                name: name_tok.text.clone(),
                values,
            },
            j - i,
        )
    })
}

/// Record call/alloc/sum/span facts for the identifier at `i`.
fn scan_body_token(toks: &[Tok], i: usize, f: &mut FnDef, loop_depth: u32) {
    let t = &toks[i];

    // pq_prof span/tick literals (profile mapping).
    if t.text == "pq_prof"
        && toks.get(i + 1).is_some_and(|n| n.text == ":")
        && toks.get(i + 2).is_some_and(|n| n.text == ":")
        && toks.get(i + 3).is_some_and(|c| {
            matches!(
                c.text.as_str(),
                "span" | "tick" | "span_dyn" | "worker_span"
            )
        })
        && toks.get(i + 4).is_some_and(|n| n.text == "(")
    {
        // First string literal within the next few tokens (direct
        // literal, or the format!/closure literal of the dyn variants).
        if let Some(s) = toks[i + 5..toks.len().min(i + 13)]
            .iter()
            .find(|x| x.kind == TokKind::Str)
        {
            let lit = s.text.trim_matches('"');
            let prefix = lit.split('{').next().unwrap_or(lit);
            if !prefix.is_empty() {
                f.span_literals.push(prefix.to_string());
            }
        }
    }

    if is_stmt_keyword(&t.text) {
        return;
    }

    let prev = i.checked_sub(1).map(|p| &toks[p]);
    let is_method = prev.is_some_and(|p| p.text == ".");
    let qualifier = (i >= 3
        && toks[i - 1].text == ":"
        && toks[i - 2].text == ":"
        && toks[i - 3].kind == TokKind::Ident)
        .then(|| toks[i - 3].text.clone())
        // `Self::helper(…)` resolves against the enclosing impl type.
        .map(|q| match (q.as_str(), &f.impl_type) {
            ("Self", Some(ty)) => ty.clone(),
            _ => q,
        });

    // Macro calls: `format!(…)` / `vec![…]` allocate.
    if toks.get(i + 1).is_some_and(|n| n.text == "!") && ALLOC_MACROS.contains(&t.text.as_str()) {
        f.allocs.push(AllocSite {
            what: format!("{}!", t.text),
            line: t.line,
            col: t.col,
            loop_depth,
        });
        return;
    }

    // Callable position: name(…) possibly through a turbofish.
    let (after_tf, turbofish) = skip_turbofish(toks, i + 1);
    let is_call = toks.get(after_tf).is_some_and(|n| n.text == "(");
    if !is_call {
        return;
    }

    // `.sum()` — order-sensitivity candidate unless the turbofish
    // pins an integer element type (integer addition commutes).
    if is_method && t.text == "sum" {
        let int_tf = turbofish.as_deref().is_some_and(|tf| {
            matches!(
                tf,
                "u8" | "u16"
                    | "u32"
                    | "u64"
                    | "u128"
                    | "usize"
                    | "i8"
                    | "i16"
                    | "i32"
                    | "i64"
                    | "i128"
                    | "isize"
            )
        });
        if !int_tf {
            f.sums.push(SumSite {
                line: t.line,
                col: t.col,
                turbofish,
            });
        }
        return;
    }

    // Allocation shapes.
    if is_method && ALLOC_METHODS.contains(&t.text.as_str()) {
        f.allocs.push(AllocSite {
            what: format!(".{}()", t.text),
            line: t.line,
            col: t.col,
            loop_depth,
        });
        return;
    }
    if let Some(q) = &qualifier {
        if ALLOC_CTORS
            .iter()
            .any(|(ty, ctor)| q == ty && t.text == *ctor)
        {
            f.allocs.push(AllocSite {
                what: format!("{q}::{}", t.text),
                line: t.line,
                col: t.col,
                loop_depth,
            });
            return;
        }
    }

    if matches!(
        t.text.as_str(),
        "par_map" | "par_map_indexed" | "try_par_map"
    ) {
        f.has_par_call = true;
    }

    // Call-graph edge candidates: skip bare uppercase constructors
    // (`Some(…)`, `ObjectId(…)`) — qualified calls keep their
    // qualifier for precise resolution.
    let upper_start = t
        .text
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_uppercase());
    if upper_start && qualifier.is_none() {
        return;
    }
    f.calls.push(CallSite {
        name: t.text.clone(),
        qualifier,
        method: is_method,
        line: t.line,
        col: t.col,
        loop_depth,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> FileAst {
        let (toks, _) = lex(src);
        parse(&toks, &[])
    }

    #[test]
    fn fns_and_impls() {
        let ast = parse_src(
            "impl<E> Queue<E> { fn pop(&mut self) -> Option<E> { None } }\n\
             fn free() {}\n\
             impl Trait for Link { fn push(&mut self) {} }",
        );
        let names: Vec<(String, Option<String>)> = ast
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.impl_type.clone()))
            .collect();
        assert_eq!(
            names,
            [
                ("pop".to_string(), Some("Queue".to_string())),
                ("free".to_string(), None),
                ("push".to_string(), Some("Link".to_string())),
            ]
        );
        assert_eq!(ast.fns[0].ret, "Option E");
    }

    #[test]
    fn loops_nest_and_reset_per_fn() {
        let ast = parse_src(
            "fn f(v: &[u32]) { for x in v { while *x > 0 { g(*x); } } h(); }\n\
             fn g(x: u32) { let s = x.to_string(); }",
        );
        let f = &ast.fns[0];
        let g_call = f.calls.iter().find(|c| c.name == "g").expect("g call");
        assert_eq!(g_call.loop_depth, 2);
        let h_call = f.calls.iter().find(|c| c.name == "h").expect("h call");
        assert_eq!(h_call.loop_depth, 0);
        let g = &ast.fns[1];
        assert_eq!(g.allocs.len(), 1);
        assert_eq!(g.allocs[0].loop_depth, 0);
    }

    #[test]
    fn alloc_shapes() {
        let ast = parse_src(
            "fn f() { let v = Vec::new(); let s = format!(\"x{}\", 1); \
             let t = v.clone(); let u: Vec<u32> = t.iter().collect(); \
             let b = Box::new(3); let w = vec![0; 4]; }",
        );
        let whats: Vec<&str> = ast.fns[0].allocs.iter().map(|a| a.what.as_str()).collect();
        assert_eq!(
            whats,
            [
                "Vec::new",
                "format!",
                ".clone()",
                ".collect()",
                "Box::new",
                "vec!"
            ]
        );
    }

    #[test]
    fn integer_turbofish_sums_are_exempt() {
        let ast = parse_src(
            "fn f(v: &[f64], u: &[u64]) -> f64 { \
             let a: u64 = u.iter().sum::<u64>(); \
             v.iter().sum() }",
        );
        assert_eq!(ast.fns[0].sums.len(), 1, "{:?}", ast.fns[0].sums);
        assert!(ast.fns[0].sums[0].turbofish.is_none());
    }

    #[test]
    fn struct_literal_after_for_does_not_poison_scopes() {
        // `impl Trait for Foo` must not open a loop scope.
        let ast = parse_src("impl Iterator for Gen { fn next(&mut self) -> Option<u32> { let x = self.v.clone(); None } }");
        assert_eq!(ast.fns[0].allocs.len(), 1);
        assert_eq!(ast.fns[0].allocs[0].loop_depth, 0);
    }

    #[test]
    fn hot_root_attaches_to_next_fn() {
        let (toks, _) = lex(
            "fn cold() {}\n// annotation line below\nfn hot_one() { work(); }\nfn also_cold() {}",
        );
        let ast = parse(
            &toks,
            &[HotRootAnn {
                line: 2,
                frame: Some("experiment".into()),
            }],
        );
        let flags: Vec<(String, bool)> = ast
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.hot_root))
            .collect();
        assert_eq!(
            flags,
            [
                ("cold".to_string(), false),
                ("hot_one".to_string(), true),
                ("also_cold".to_string(), false),
            ]
        );
        assert_eq!(ast.fns[1].root_frame.as_deref(), Some("experiment"));
    }

    #[test]
    fn aliases_and_renames() {
        let ast = parse_src(
            "type FastMap = HashMap<u32, u32>;\n\
             type Plain = Vec<u32>;\n\
             use std::collections::HashMap as Dict;\n\
             use std::collections::BTreeMap as Sorted;",
        );
        let hashy: Vec<&str> = ast
            .aliases
            .iter()
            .filter(|a| a.aliases_hash)
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(hashy, ["FastMap", "Dict"]);
        let clean: Vec<&str> = ast
            .aliases
            .iter()
            .filter(|a| !a.aliases_hash)
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(clean, ["Plain", "Sorted"]);
    }

    #[test]
    fn const_str_sets() {
        let ast = parse_src(
            "pub const KNOWN_VARS: &[&str] = &[\"PQ_SEED\", \"PQ_JOBS\"];\n\
             const NOT_STRINGS: &[u32] = &[1, 2];",
        );
        assert_eq!(ast.const_sets.len(), 1);
        assert_eq!(ast.const_sets[0].name, "KNOWN_VARS");
        assert_eq!(ast.const_sets[0].values, ["PQ_SEED", "PQ_JOBS"]);
    }

    #[test]
    fn span_literals_with_dyn_prefixes() {
        let ast = parse_src(
            "fn f(label: &str) { let _a = pq_prof::span(\"event:arrival\"); \
             pq_prof::tick(\"quic:rto\"); \
             let _b = pq_prof::span_dyn(|| format!(\"link:{label}\")); }",
        );
        assert_eq!(
            ast.fns[0].span_literals,
            ["event:arrival", "quic:rto", "link:"]
        );
    }

    #[test]
    fn qualified_and_method_calls() {
        let ast = parse_src(
            "fn f(q: &mut Q) { Website::generate(7); q.schedule(now, ev); helper(); Some(3); }",
        );
        let calls: Vec<(String, Option<String>, bool)> = ast.fns[0]
            .calls
            .iter()
            .map(|c| (c.name.clone(), c.qualifier.clone(), c.method))
            .collect();
        assert_eq!(
            calls,
            [
                ("generate".to_string(), Some("Website".to_string()), false),
                ("schedule".to_string(), None, true),
                ("helper".to_string(), None, false),
            ]
        );
    }

    #[test]
    fn bodyless_trait_decls_are_dropped() {
        let ast = parse_src("trait T { fn decl(&self); fn given(&self) { self.decl() } }");
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "given");
    }

    #[test]
    fn parser_is_total_on_half_edited_source() {
        let ast = parse_src("fn broken( { for x in { let y = ");
        // No panic; whatever parsed is fine.
        let _ = ast.fns.len();
    }
}
