//! Workspace symbol table: every function definition across the
//! linted file set, plus the cross-file facts the semantic rule
//! families consume — hash-container aliases, hash-returning
//! signatures, and the declared name registries (`KNOWN_VARS`,
//! `METRIC_NAMES`, `SPAN_NAMES`) parsed straight out of the linted
//! source so fixtures and the real workspace use one mechanism.

use crate::ast::FileAst;
use std::collections::{BTreeMap, BTreeSet};

/// Where the A-family reads its environment-variable registry from.
pub const ENV_REGISTRY_FILE: &str = "crates/obs/src/env.rs";

/// Where the A-family reads its metric/span name registries from.
pub const NAME_REGISTRY_FILE: &str = "crates/obs/src/names.rs";

/// One file's contribution to the workspace.
#[derive(Clone, Debug)]
pub struct FileEntry {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// `crates/<name>/…` → `Some(name)`.
    pub crate_name: Option<String>,
    /// Parsed structure.
    pub ast: FileAst,
    /// Whole file is test context.
    pub is_test: bool,
    /// Line of the first `#[cfg(test)]`.
    pub test_from_line: Option<u32>,
}

impl FileEntry {
    fn in_test(&self, line: u32) -> bool {
        self.is_test || self.test_from_line.is_some_and(|t| line >= t)
    }
}

/// A cross-file alias of a hash container.
#[derive(Clone, Debug)]
pub struct HashAlias {
    /// Workspace-relative path of the declaration.
    pub decl_path: String,
    /// Declaration line.
    pub decl_line: u32,
}

/// One function symbol: `(file index, index into that file's
/// `FileAst::fns`)`.
#[derive(Clone, Copy, Debug)]
pub struct FnSym {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's `ast.fns`.
    pub ast_idx: usize,
}

/// The cross-file view the semantic rules run against. Built once per
/// lint run (pass 1), consumed by every file's pass-2 checks.
#[derive(Debug, Default)]
pub struct Workspace {
    /// All parsed files, in walk order.
    pub files: Vec<FileEntry>,
    /// Non-test function symbols across the workspace.
    pub fns: Vec<FnSym>,
    /// Function name → symbol ids (for call resolution).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// `(file, ast_idx)` → symbol id.
    pub fn_ids: BTreeMap<(usize, usize), usize>,
    /// Alias name → declaration, for aliases of `HashMap`/`HashSet`.
    pub hash_aliases: BTreeMap<String, HashAlias>,
    /// Symbol ids of functions whose return type mentions a hash
    /// container.
    pub hash_returning: BTreeSet<usize>,
    /// Declared environment variable names (`KNOWN_VARS` in
    /// [`ENV_REGISTRY_FILE`]); empty set disables the `env-name` rule.
    pub known_env_vars: BTreeSet<String>,
    /// Declared metric names (`METRIC_NAMES` in
    /// [`NAME_REGISTRY_FILE`]); empty disables that half of
    /// `name-registry`.
    pub metric_names: BTreeSet<String>,
    /// Declared span/tick frame names (`SPAN_NAMES`); entries ending
    /// in `:` are dynamic-label prefixes (`link:` covers `link:uplink`).
    pub span_names: BTreeSet<String>,
    /// Crate → path-dependency crates, parsed from `crates/*/Cargo.toml`
    /// by the engine. Call resolution refuses cross-crate edges the
    /// manifest graph cannot carry (a `.build()` in `pq-transport` can
    /// never land in `pq-lint` — nothing depends on the linter). Empty
    /// (single-file lints, fixtures without manifests) disables the
    /// filter.
    pub crate_deps: BTreeMap<String, BTreeSet<String>>,
}

impl Workspace {
    /// Build the symbol table from parsed files. Test files and
    /// functions inside `#[cfg(test)]` regions do not become symbols:
    /// they neither emit nor receive call-graph edges.
    pub fn build(files: Vec<FileEntry>) -> Workspace {
        let mut ws = Workspace {
            files,
            ..Workspace::default()
        };
        for (fi, file) in ws.files.iter().enumerate() {
            for (ai, f) in file.ast.fns.iter().enumerate() {
                if file.in_test(f.line) {
                    continue;
                }
                let id = ws.fns.len();
                ws.fns.push(FnSym {
                    file: fi,
                    ast_idx: ai,
                });
                ws.by_name.entry(f.name.clone()).or_default().push(id);
                ws.fn_ids.insert((fi, ai), id);
                if f.ret.contains("HashMap") || f.ret.contains("HashSet") {
                    ws.hash_returning.insert(id);
                }
            }
            for a in &file.ast.aliases {
                if a.aliases_hash {
                    ws.hash_aliases
                        .entry(a.name.clone())
                        .or_insert_with(|| HashAlias {
                            decl_path: file.rel_path.clone(),
                            decl_line: a.line,
                        });
                }
            }
            for set in &file.ast.const_sets {
                let dst = match (file.rel_path.as_str(), set.name.as_str()) {
                    (ENV_REGISTRY_FILE, "KNOWN_VARS") => &mut ws.known_env_vars,
                    (NAME_REGISTRY_FILE, "METRIC_NAMES") => &mut ws.metric_names,
                    (NAME_REGISTRY_FILE, "SPAN_NAMES") => &mut ws.span_names,
                    _ => continue,
                };
                dst.extend(set.values.iter().cloned());
            }
        }
        ws
    }

    /// The `FnDef` behind a symbol id.
    pub fn def(&self, id: usize) -> &crate::ast::FnDef {
        let sym = &self.fns[id];
        &self.files[sym.file].ast.fns[sym.ast_idx]
    }

    /// Workspace-relative path of a symbol's file.
    pub fn path_of(&self, id: usize) -> &str {
        &self.files[self.fns[id].file].rel_path
    }

    /// Crate of a symbol's file.
    pub fn crate_of(&self, id: usize) -> Option<&str> {
        self.files[self.fns[id].file].crate_name.as_deref()
    }

    /// Whether a call from crate `from` can reach a function defined
    /// in crate `to` under the manifest dependency graph. Permissive
    /// on missing information: no dep map at all, a caller or callee
    /// outside `crates/`, or a crate without a parsed manifest all
    /// allow the edge.
    pub fn may_call(&self, from: Option<&str>, to: Option<&str>) -> bool {
        if self.crate_deps.is_empty() {
            return true;
        }
        let (Some(from), Some(to)) = (from, to) else {
            return true;
        };
        if from == to {
            return true;
        }
        match self.crate_deps.get(from) {
            Some(deps) => deps.contains(to),
            None => true,
        }
    }

    /// A declared span name covers a literal (or format-literal
    /// prefix) if it matches exactly, or if the declared entry is a
    /// dynamic-label prefix (trailing `:`) that the literal extends.
    pub fn span_name_ok(&self, lit: &str) -> bool {
        self.span_names.contains(lit)
            || self
                .span_names
                .iter()
                .any(|d| d.ends_with(':') && lit.starts_with(d.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;
    use crate::rules::first_cfg_test_line;

    fn entry(rel: &str, src: &str) -> FileEntry {
        let (toks, _) = lex(src);
        let test_from_line = first_cfg_test_line(&toks);
        FileEntry {
            rel_path: rel.to_string(),
            crate_name: rel
                .strip_prefix("crates/")
                .and_then(|r| r.split('/').next())
                .map(String::from),
            ast: parse(&toks, &[]),
            is_test: false,
            test_from_line,
        }
    }

    #[test]
    fn symbols_skip_cfg_test_regions() {
        let ws = Workspace::build(vec![entry(
            "crates/core/src/x.rs",
            "fn real() {}\n#[cfg(test)]\nmod tests { fn helper() {} }",
        )]);
        assert!(ws.by_name.contains_key("real"));
        assert!(!ws.by_name.contains_key("helper"));
    }

    #[test]
    fn hash_facts_cross_files() {
        let ws = Workspace::build(vec![
            entry(
                "crates/stats/src/idx.rs",
                "type FastMap = HashMap<u32, u32>;\n\
                 pub fn make_index() -> HashMap<u32, u32> { HashMap::new() }\n\
                 pub fn make_list() -> Vec<u32> { Vec::new() }",
            ),
            entry("crates/core/src/y.rs", "fn f() {}"),
        ]);
        assert!(ws.hash_aliases.contains_key("FastMap"));
        let mk = ws.by_name["make_index"][0];
        assert!(ws.hash_returning.contains(&mk));
        let ml = ws.by_name["make_list"][0];
        assert!(!ws.hash_returning.contains(&ml));
    }

    #[test]
    fn registries_parse_from_declared_files() {
        let ws = Workspace::build(vec![
            entry(
                ENV_REGISTRY_FILE,
                "pub const KNOWN_VARS: &[&str] = &[\"PQ_SEED\", \"PQ_JOBS\"];",
            ),
            entry(
                NAME_REGISTRY_FILE,
                "pub const METRIC_NAMES: &[&str] = &[\"web.pageloads\"];\n\
                 pub const SPAN_NAMES: &[&str] = &[\"event:arrival\", \"link:\"];",
            ),
        ]);
        assert!(ws.known_env_vars.contains("PQ_SEED"));
        assert!(ws.metric_names.contains("web.pageloads"));
        assert!(ws.span_name_ok("event:arrival"));
        assert!(ws.span_name_ok("link:uplink"));
        assert!(ws.span_name_ok("link:"));
        assert!(!ws.span_name_ok("event:unknown"));
    }

    #[test]
    fn same_const_name_elsewhere_is_ignored() {
        let ws = Workspace::build(vec![entry(
            "crates/core/src/x.rs",
            "pub const KNOWN_VARS: &[&str] = &[\"NOT_A_REGISTRY\"];",
        )]);
        assert!(ws.known_env_vars.is_empty());
    }
}
