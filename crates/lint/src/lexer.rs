//! A small hand-rolled Rust lexer — just enough structure for the
//! lint rules, no full parse.
//!
//! The scanner distinguishes the token classes that matter for
//! project-invariant linting: identifiers, punctuation, numeric /
//! string / char literals, lifetimes, and comments (kept separately so
//! suppression directives can be read from them). It handles every
//! literal form that appears in real Rust source — escaped strings,
//! raw strings with arbitrary `#` fences, byte and C strings, char
//! vs. lifetime disambiguation — and *nested* block comments, which
//! regex-based scanners get wrong.
//!
//! Positions are 1-based `(line, col)` in characters, matching what
//! editors and CI annotations expect.

/// The class of one code token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `fn`, `unwrap`, …).
    Ident,
    /// Single punctuation character (`.`/`:`/`!`/`[`/…).
    Punct,
    /// String literal of any form (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Char or byte-char literal (`'a'`, `'\n'`, `b'x'`).
    Char,
    /// Numeric literal (integers and floats, any base).
    Num,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
}

/// One code token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text. For strings this is the full literal including
    /// quotes and prefix; for punctuation a single character.
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

impl Tok {
    /// Column just past the token's last character **when the token is
    /// single-line** (multi-line strings return the start column; the
    /// adjacency checks that use this never involve them).
    pub fn end_col(&self) -> u32 {
        if self.text.contains('\n') {
            self.col
        } else {
            self.col + self.text.chars().count() as u32
        }
    }
}

/// One comment (line or block) with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// Full text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line of the comment start.
    pub line: u32,
    /// 1-based column of the comment start.
    pub col: u32,
    /// Line the comment ends on (same as `line` for `//` comments).
    pub end_line: u32,
}

/// Character cursor with line/column tracking.
struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Cursor {
        Cursor {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Tokenize `src`, returning code tokens and comments separately.
///
/// The lexer is total: any input produces a token stream (unterminated
/// literals run to end-of-file rather than erroring), so a half-edited
/// file still lints.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let mut cur = Cursor::new(src);
    let mut toks = Vec::new();
    let mut comments = Vec::new();

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek_at(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek() {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            comments.push(Comment {
                text,
                line,
                col,
                end_line: line,
            });
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0usize;
            while let Some(ch) = cur.peek() {
                if ch == '/' && cur.peek_at(1) == Some('*') {
                    depth += 1;
                    text.push('/');
                    text.push('*');
                    cur.bump();
                    cur.bump();
                } else if ch == '*' && cur.peek_at(1) == Some('/') {
                    depth -= 1;
                    text.push('*');
                    text.push('/');
                    cur.bump();
                    cur.bump();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(ch);
                    cur.bump();
                }
            }
            comments.push(Comment {
                text,
                line,
                col,
                end_line: cur.line,
            });
            continue;
        }
        // Identifiers — possibly a raw/byte/C string prefix.
        if c.is_alphabetic() || c == '_' {
            let mut ident = String::new();
            while let Some(ch) = cur.peek() {
                if ch.is_alphanumeric() || ch == '_' {
                    ident.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            // String-literal prefixes: r" r#" b" br" c" cr" b' — the
            // prefix ident is directly followed by the quote/fence.
            let is_str_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "c" | "cr")
                && matches!(cur.peek(), Some('"') | Some('#'));
            let is_byte_char = ident == "b" && cur.peek() == Some('\'');
            if is_str_prefix {
                let body = scan_guarded_string(&mut cur);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: format!("{ident}{body}"),
                    line,
                    col,
                });
            } else if is_byte_char {
                let body = scan_char_or_lifetime(&mut cur);
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: format!("{ident}{body}"),
                    line,
                    col,
                });
            } else {
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: ident,
                    line,
                    col,
                });
            }
            continue;
        }
        // Numbers (loose: base prefixes, underscores, float dots and
        // exponents — precision is irrelevant to the rules).
        if c.is_ascii_digit() {
            let mut num = String::new();
            while let Some(ch) = cur.peek() {
                if ch.is_alphanumeric() || ch == '_' {
                    num.push(ch);
                    cur.bump();
                } else if ch == '.' {
                    // `1.0` is a float; `0..n` is a range.
                    match cur.peek_at(1) {
                        Some(d) if d.is_ascii_digit() => {
                            num.push('.');
                            cur.bump();
                        }
                        _ => break,
                    }
                } else if (ch == '+' || ch == '-')
                    && matches!(num.chars().last(), Some('e') | Some('E'))
                {
                    // Exponent sign: 1e-3.
                    num.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: num,
                line,
                col,
            });
            continue;
        }
        // Plain strings.
        if c == '"' {
            let text = scan_quoted(&mut cur, '"');
            toks.push(Tok {
                kind: TokKind::Str,
                text,
                line,
                col,
            });
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            let body = scan_char_or_lifetime(&mut cur);
            let kind = if body.ends_with('\'') && body.len() > 1 {
                TokKind::Char
            } else {
                TokKind::Lifetime
            };
            toks.push(Tok {
                kind,
                text: body,
                line,
                col,
            });
            continue;
        }
        // Everything else: single punctuation characters.
        cur.bump();
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    (toks, comments)
}

/// Scan a `"…"`-style literal (cursor on the opening quote), honouring
/// backslash escapes. Returns the literal including quotes.
fn scan_quoted(cur: &mut Cursor, quote: char) -> String {
    let mut text = String::new();
    text.push(quote);
    cur.bump();
    while let Some(ch) = cur.peek() {
        if ch == '\\' {
            text.push(ch);
            cur.bump();
            if let Some(esc) = cur.peek() {
                text.push(esc);
                cur.bump();
            }
            continue;
        }
        text.push(ch);
        cur.bump();
        if ch == quote {
            break;
        }
    }
    text
}

/// Scan the quote part after a raw/byte/C prefix: either a plain
/// escaped string (`"…"`) or a `#`-fenced raw string (`#"…"#`,
/// `##"…"##`, …). Raw bodies take no escapes; the close must match
/// the fence length.
fn scan_guarded_string(cur: &mut Cursor) -> String {
    let mut text = String::new();
    let mut fence = 0usize;
    while cur.peek() == Some('#') {
        fence += 1;
        text.push('#');
        cur.bump();
    }
    if cur.peek() != Some('"') {
        return text; // malformed; give back what we have
    }
    if fence == 0 {
        // A raw string without fence still takes no escapes, but `r"\"`
        // *is* terminated by that quote — escape handling differs from
        // scan_quoted only for `r`/`br`/`cr` prefixes. Byte strings
        // (`b"…"`) do take escapes; treating `\"` as an escape there is
        // required, and for `r"…"` a `\` before `"` simply cannot occur
        // in valid code unless the string ends — either way we stay in
        // sync for everything the rules look at.
        text.push_str(&scan_quoted(cur, '"'));
        return text;
    }
    text.push('"');
    cur.bump();
    while let Some(ch) = cur.peek() {
        text.push(ch);
        cur.bump();
        if ch == '"' {
            let mut got = 0usize;
            while got < fence && cur.peek() == Some('#') {
                got += 1;
                text.push('#');
                cur.bump();
            }
            if got == fence {
                break;
            }
        }
    }
    text
}

/// Scan from a `'`: either a char literal (`'a'`, `'\u{1F600}'`) or a
/// lifetime (`'a`, `'static`, `'_`). Returns the raw text.
fn scan_char_or_lifetime(cur: &mut Cursor) -> String {
    let mut text = String::new();
    text.push('\'');
    cur.bump();
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal.
            text.push('\\');
            cur.bump();
            while let Some(ch) = cur.peek() {
                text.push(ch);
                cur.bump();
                if ch == '\'' {
                    break;
                }
            }
            text
        }
        Some(c) if c.is_alphanumeric() || c == '_' => {
            // `'a'` = char, `'abc` / `'a` followed by non-quote =
            // lifetime.
            text.push(c);
            cur.bump();
            if cur.peek() == Some('\'') {
                text.push('\'');
                cur.bump();
                return text;
            }
            while let Some(ch) = cur.peek() {
                if ch.is_alphanumeric() || ch == '_' {
                    text.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            text
        }
        Some(c) => {
            // Punctuation char literal like '(' or ' '.
            text.push(c);
            cur.bump();
            if cur.peek() == Some('\'') {
                text.push('\'');
                cur.bump();
            }
            text
        }
        None => text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let (toks, _) = lex("let x = map.get(&k);");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["let", "x", "=", "map", ".", "get", "(", "&", "k", ")", ";"]
        );
    }

    #[test]
    fn positions_are_one_based() {
        let (toks, _) = lex("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!(toks[1].end_col(), 5);
    }

    #[test]
    fn string_contents_are_not_idents() {
        assert_eq!(idents(r#"let s = "HashMap::new()";"#), ["let", "s"]);
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        let (toks, _) = lex(r#"f("a\"b", c)"#);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, [r#""a\"b""#]);
        assert!(idents(r#"f("a\"b", unwrap)"#).contains(&"unwrap".to_string()));
    }

    #[test]
    fn raw_strings_with_fences() {
        assert_eq!(
            idents(r###"let s = r#"unwrap() "quoted" inside"#;"###),
            ["let", "s"]
        );
        let (toks, _) = lex(r###"r##"fence "# not end"## x"###);
        assert_eq!(toks.last().map(|t| t.text.as_str()), Some("x"));
    }

    #[test]
    fn byte_and_c_strings() {
        assert_eq!(idents(r###"b"bytes" c"cstr" br#"raw"# y"###), ["y"]);
        let (toks, _) = lex("b'x' z");
        assert_eq!(toks[0].kind, TokKind::Char);
        assert_eq!(toks[1].text, "z");
    }

    #[test]
    fn char_vs_lifetime() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, ["'x'", "'\\n'"]);
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let (toks, _) = lex("&'static str, &'_ T");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'static", "'_"]);
    }

    #[test]
    fn line_comments_collected_separately() {
        let (toks, comments) = lex("x // pq-lint: allow(panic) -- invariant\ny");
        assert_eq!(toks.len(), 2);
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains("allow(panic)"));
        assert_eq!(comments[0].line, 1);
    }

    #[test]
    fn nested_block_comments() {
        let (toks, comments) = lex("a /* outer /* inner */ still comment */ b");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["a", "b"]);
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains("inner"));
    }

    #[test]
    fn unterminated_block_comment_is_total() {
        let (toks, comments) = lex("a /* runs to eof");
        assert_eq!(toks.len(), 1);
        assert_eq!(comments.len(), 1);
    }

    #[test]
    fn comment_markers_inside_strings() {
        assert_eq!(
            idents(r#"let s = "// not a comment"; y"#),
            ["let", "s", "y"]
        );
        let (_, comments) = lex(r#""/* nope */" // real"#);
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].text, "// real");
    }

    #[test]
    fn numbers_including_floats_and_ranges() {
        let (toks, _) = lex("1.5e-3 0x1f 0..10 1_000");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["1.5e-3", "0x1f", "0", "10", "1_000"]);
    }

    #[test]
    fn multiline_string_tracks_lines() {
        let (toks, _) = lex("\"line1\nline2\" x");
        let x = toks.last().unwrap();
        assert_eq!((x.line, x.col), (2, 8));
    }
}
