//! Conservative name-matched call graph with hot-path reachability.
//!
//! Edges are resolved by callee name against the workspace symbol
//! table:
//!
//! * `Type::name(…)` — candidates filtered to functions defined in an
//!   `impl Type` block; a type qualifier with no matching impl
//!   (workspace type without the method, or an external/std type like
//!   `Mutex::new`) draws no edge; a lowercase module-path qualifier
//!   falls back to every same-named function. `Self::` is resolved to
//!   the enclosing impl type at parse time.
//! * `.name(…)` — method form; names on the
//!   [`crate::ast::COMMON_METHODS`] stoplist draw no edge (they would
//!   connect every container in the workspace), everything else edges
//!   to every same-named workspace function.
//! * `name(…)` — free calls edge to every same-named function.
//!
//! All forms additionally refuse cross-crate edges the manifest
//! dependency graph cannot carry (see
//! [`crate::symbols::Workspace::may_call`]).
//!
//! Over-approximation is the point: a spurious edge can only
//! grandfather a finding into the baseline, a missed edge hides a real
//! per-event allocation.
//!
//! ## Hot-path states
//!
//! Roots are functions carrying a `// pq-lint: hot-root -- <reason>`
//! annotation. From each root, reachability propagates two states:
//!
//! * **Hot** — on the hot path; allocations inside its *loops* are
//!   flagged (`hot-loop-alloc`).
//! * **PerEvent** — reached through a call that sits inside a loop of
//!   a hot function, i.e. executed once per event; *any* allocation in
//!   it is per-event traffic (`hot-alloc`), loops inside escalate to
//!   `hot-loop-alloc`.
//!
//! `PerEvent` dominates `Hot`. The per-symbol provenance chain (which
//! call dragged a function onto the hot path) feeds finding messages
//! and the `--profile` frame mapping.

use crate::ast::{CallSite, COMMON_METHODS};
use crate::symbols::Workspace;
use std::collections::BTreeSet;

/// Primitive type qualifiers (`u64::from(…)`): external, no edges.
const PRIMITIVE_TYPES: &[&str] = &[
    "bool", "char", "f32", "f64", "i128", "i16", "i32", "i64", "i8", "isize", "str", "u128", "u16",
    "u32", "u64", "u8", "usize",
];

/// Hot-path state of one function symbol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Hotness {
    /// Not reachable from any annotated root.
    Cold,
    /// Reachable from a hot root (outside any loop).
    Hot,
    /// Reachable through a loop-borne call: runs once per event.
    PerEvent,
}

/// The resolved graph plus propagated reachability.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Per-symbol adjacency: `(callee id, call is inside a loop)`.
    pub edges: Vec<Vec<(usize, bool)>>,
    /// Per-symbol hot-path state.
    pub hotness: Vec<Hotness>,
    /// Per-symbol provenance: the caller that first set the state.
    pub hot_parent: Vec<Option<usize>>,
    /// Per-symbol: reachable from a function that fans out over
    /// pq-par (for the `float-flow` rule).
    pub par_reachable: Vec<bool>,
    /// Every type name appearing as an `impl` block's subject.
    pub impl_types: BTreeSet<String>,
}

impl CallGraph {
    /// Resolve one call site to workspace symbol ids, per the edge
    /// policy in the module docs. `from_crate` is the calling file's
    /// crate: candidates in crates the caller's manifest cannot reach
    /// are dropped. Shared by graph construction and the D2 flow
    /// rules.
    pub fn resolve(&self, ws: &Workspace, from_crate: Option<&str>, call: &CallSite) -> Vec<usize> {
        let Some(candidates) = ws.by_name.get(&call.name) else {
            return Vec::new();
        };
        let reachable: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&c| ws.may_call(from_crate, ws.crate_of(c)))
            .collect();
        match &call.qualifier {
            Some(q) => {
                let filtered: Vec<usize> = reachable
                    .iter()
                    .copied()
                    .filter(|&c| ws.def(c).impl_type.as_deref() == Some(q.as_str()))
                    .collect();
                let is_type = q.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                    || PRIMITIVE_TYPES.contains(&q.as_str());
                if !filtered.is_empty() {
                    filtered
                } else if is_type {
                    // A type qualifier that matched no workspace impl:
                    // either a known workspace type without this
                    // method, or an external/std type (`Mutex::new`,
                    // `u64::from`) — neither draws an edge.
                    Vec::new()
                } else {
                    // Lowercase qualifier: a module path — fall back.
                    reachable
                }
            }
            None if call.method && COMMON_METHODS.contains(&call.name.as_str()) => Vec::new(),
            None => reachable,
        }
    }

    /// Resolve edges and propagate hotness / par-reachability.
    pub fn build(ws: &Workspace) -> CallGraph {
        let n = ws.fns.len();
        let mut g = CallGraph {
            edges: vec![Vec::new(); n],
            hotness: vec![Hotness::Cold; n],
            hot_parent: vec![None; n],
            par_reachable: vec![false; n],
            impl_types: (0..n)
                .filter_map(|id| ws.def(id).impl_type.clone())
                .collect(),
        };
        for id in 0..n {
            let def = ws.def(id);
            let from_crate = ws.crate_of(id).map(String::from);
            let mut seen: BTreeSet<(usize, bool)> = BTreeSet::new();
            for call in &def.calls {
                let in_loop = call.loop_depth > 0;
                for t in g.resolve(ws, from_crate.as_deref(), call) {
                    if t != id && seen.insert((t, in_loop)) {
                        g.edges[id].push((t, in_loop));
                    }
                }
            }
        }

        // Hot propagation: worklist, PerEvent dominates Hot.
        let mut work: Vec<usize> = Vec::new();
        for id in 0..n {
            if ws.def(id).hot_root {
                g.hotness[id] = Hotness::Hot;
                work.push(id);
            }
        }
        while let Some(id) = work.pop() {
            let state = g.hotness[id];
            for &(callee, in_loop) in &g.edges[id].clone() {
                let next = if state == Hotness::PerEvent || in_loop {
                    Hotness::PerEvent
                } else {
                    Hotness::Hot
                };
                if next > g.hotness[callee] {
                    g.hotness[callee] = next;
                    // An annotated root keeps its own provenance even
                    // when an incoming edge escalates it to PerEvent.
                    if !ws.def(callee).hot_root {
                        g.hot_parent[callee] = Some(id);
                    }
                    work.push(callee);
                }
            }
        }

        // Par reachability: plain BFS from fan-out functions.
        let mut work: Vec<usize> = (0..n).filter(|&id| ws.def(id).has_par_call).collect();
        for &id in &work {
            g.par_reachable[id] = true;
        }
        while let Some(id) = work.pop() {
            for &(callee, _) in &g.edges[id].clone() {
                if !g.par_reachable[callee] {
                    g.par_reachable[callee] = true;
                    work.push(callee);
                }
            }
        }
        g
    }

    /// The annotated root a symbol's hotness flows from, via the
    /// provenance chain.
    pub fn root_of(&self, mut id: usize) -> usize {
        let mut guard = 0usize;
        while let Some(p) = self.hot_parent[id] {
            id = p;
            guard += 1;
            if guard > self.hot_parent.len() {
                break;
            }
        }
        id
    }

    /// Short human description of how `id` got hot: `` `root` → … ``.
    pub fn chain_desc(&self, ws: &Workspace, id: usize) -> String {
        let root = self.root_of(id);
        let root_def = ws.def(root);
        if root == id {
            format!("annotated hot root `{}`", root_def.name)
        } else {
            format!(
                "reachable from hot root `{}` ({}:{})",
                root_def.name,
                ws.path_of(root),
                root_def.line
            )
        }
    }

    /// Profile frames relevant to a finding in `id`: the function's
    /// own span literals, every ancestor's on the provenance chain,
    /// and the root's `hot-root(<frame>)` hint. Ordered most-specific
    /// first.
    pub fn frames_for(&self, ws: &Workspace, id: usize) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut cur = id;
        let mut guard = 0usize;
        loop {
            let def = ws.def(cur);
            for lit in &def.span_literals {
                if !out.contains(lit) {
                    out.push(lit.clone());
                }
            }
            if let Some(hint) = &def.root_frame {
                if !out.contains(hint) {
                    out.push(hint.clone());
                }
            }
            match self.hot_parent[cur] {
                Some(p) if guard <= self.hot_parent.len() => {
                    cur = p;
                    guard += 1;
                }
                _ => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{parse, HotRootAnn};
    use crate::lexer::lex;
    use crate::symbols::FileEntry;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        let entries = files
            .iter()
            .map(|(rel, src)| {
                let (toks, _) = lex(src);
                let hot: Vec<HotRootAnn> = src
                    .lines()
                    .enumerate()
                    .filter(|(_, l)| l.contains("HOT_MARK"))
                    .map(|(i, _)| HotRootAnn {
                        line: (i + 1) as u32,
                        frame: None,
                    })
                    .collect();
                FileEntry {
                    rel_path: rel.to_string(),
                    crate_name: rel
                        .strip_prefix("crates/")
                        .and_then(|r| r.split('/').next())
                        .map(String::from),
                    ast: parse(&toks, &hot),
                    is_test: false,
                    test_from_line: None,
                }
            })
            .collect();
        Workspace::build(entries)
    }

    #[test]
    fn loop_borne_calls_become_per_event() {
        let ws = ws_of(&[(
            "crates/sim/src/a.rs",
            "// HOT_MARK\n\
             fn run() { warm_up(); loop { dispatch(); } }\n\
             fn warm_up() { prepare(); }\n\
             fn prepare() {}\n\
             fn dispatch() { handle(); }\n\
             fn handle() {}\n\
             fn unrelated() {}",
        )]);
        let g = CallGraph::build(&ws);
        let h = |name: &str| g.hotness[ws.by_name[name][0]];
        assert_eq!(h("run"), Hotness::Hot);
        assert_eq!(h("warm_up"), Hotness::Hot);
        assert_eq!(h("prepare"), Hotness::Hot);
        assert_eq!(h("dispatch"), Hotness::PerEvent);
        assert_eq!(h("handle"), Hotness::PerEvent, "per-event is transitive");
        assert_eq!(h("unrelated"), Hotness::Cold);
    }

    #[test]
    fn qualified_calls_respect_impl_types() {
        let ws = ws_of(&[(
            "crates/sim/src/b.rs",
            "// HOT_MARK\n\
             fn run() { loop { Fast::step(); } }\n\
             impl Fast { fn step() {} }\n\
             impl Slow { fn step() {} }",
        )]);
        let g = CallGraph::build(&ws);
        let hot: Vec<Hotness> = ws.by_name["step"].iter().map(|&i| g.hotness[i]).collect();
        assert_eq!(hot, [Hotness::PerEvent, Hotness::Cold]);
    }

    #[test]
    fn common_method_names_draw_no_edges() {
        let ws = ws_of(&[(
            "crates/sim/src/c.rs",
            "// HOT_MARK\n\
             fn run(q: &mut Q) { loop { q.get(0); q.drain_ready(); } }\n\
             impl Store { fn get(&self) {} }\n\
             impl Q { fn drain_ready(&mut self) {} }",
        )]);
        let g = CallGraph::build(&ws);
        assert_eq!(g.hotness[ws.by_name["get"][0]], Hotness::Cold);
        assert_eq!(g.hotness[ws.by_name["drain_ready"][0]], Hotness::PerEvent);
    }

    #[test]
    fn cross_file_propagation_and_chain() {
        let ws = ws_of(&[
            (
                "crates/sim/src/event.rs",
                "// HOT_MARK\nfn pump() { loop { crate::web::consume(); } }",
            ),
            (
                "crates/web/src/browser.rs",
                "pub fn consume() { record(); }\nfn record() {}",
            ),
        ]);
        let g = CallGraph::build(&ws);
        let record = ws.by_name["record"][0];
        assert_eq!(g.hotness[record], Hotness::PerEvent);
        let desc = g.chain_desc(&ws, record);
        assert!(desc.contains("pump"), "{desc}");
        assert!(desc.contains("crates/sim/src/event.rs"), "{desc}");
    }

    #[test]
    fn par_reachability() {
        let ws = ws_of(&[(
            "crates/core/src/d.rs",
            "fn sweep(cells: &[u32]) { pq_par::par_map(cells, |c| *c); reduce(); }\n\
             fn reduce() { tally(); }\n\
             fn tally() {}\n\
             fn standalone() {}",
        )]);
        let g = CallGraph::build(&ws);
        assert!(g.par_reachable[ws.by_name["sweep"][0]]);
        assert!(g.par_reachable[ws.by_name["tally"][0]]);
        assert!(!g.par_reachable[ws.by_name["standalone"][0]]);
    }

    #[test]
    fn recursion_terminates() {
        let ws = ws_of(&[(
            "crates/sim/src/e.rs",
            "// HOT_MARK\nfn ping() { loop { pong(); } }\nfn pong() { ping(); }",
        )]);
        let g = CallGraph::build(&ws);
        assert_eq!(g.hotness[ws.by_name["pong"][0]], Hotness::PerEvent);
        // root_of must not spin on the cycle.
        let _ = g.root_of(ws.by_name["pong"][0]);
    }
}
