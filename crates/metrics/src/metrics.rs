//! The five technical Web-performance metrics of the paper (§3):
//! First Visual Change, Last Visual Change, Speed Index, Visual
//! Completeness 85 % and Page Load Time.

use crate::visual::VisualTimeline;
use pq_sim::SimTime;

/// One page-load's technical metrics, all in milliseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetricSet {
    /// First Visual Change.
    pub fvc_ms: f64,
    /// Last Visual Change.
    pub lvc_ms: f64,
    /// Speed Index.
    pub si_ms: f64,
    /// Time to 85 % visual completeness.
    pub vc85_ms: f64,
    /// Page Load Time (onload: every object, visible or not, done).
    pub plt_ms: f64,
}

/// Which metric — used to index correlation tables (Figure 6 rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Metric {
    /// First Visual Change.
    Fvc,
    /// Speed Index.
    Si,
    /// 85 % visual completeness.
    Vc85,
    /// Last Visual Change.
    Lvc,
    /// Page Load Time.
    Plt,
}

impl Metric {
    /// Figure 6 row order.
    pub const ALL: [Metric; 5] = [
        Metric::Fvc,
        Metric::Si,
        Metric::Vc85,
        Metric::Lvc,
        Metric::Plt,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Fvc => "FVC",
            Metric::Si => "SI",
            Metric::Vc85 => "VC85",
            Metric::Lvc => "LVC",
            Metric::Plt => "PLT",
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl MetricSet {
    /// Compute the metric set from a finished visual timeline plus the
    /// onload instant (`plt`), which includes non-visual resources.
    pub fn from_timeline(timeline: &VisualTimeline, plt: SimTime) -> MetricSet {
        let lvc = timeline.last_change().unwrap_or(SimTime::ZERO);
        MetricSet {
            fvc_ms: timeline
                .first_change()
                .unwrap_or(SimTime::ZERO)
                .as_millis_f64(),
            lvc_ms: lvc.as_millis_f64(),
            si_ms: timeline.speed_index_ms(),
            vc85_ms: timeline.time_to(0.85).unwrap_or(lvc).as_millis_f64(),
            plt_ms: plt.as_millis_f64(),
        }
    }

    /// Fetch one metric by key.
    pub fn get(&self, m: Metric) -> f64 {
        match m {
            Metric::Fvc => self.fvc_ms,
            Metric::Si => self.si_ms,
            Metric::Vc85 => self.vc85_ms,
            Metric::Lvc => self.lvc_ms,
            Metric::Plt => self.plt_ms,
        }
    }

    /// Sanity ordering every load obeys: FVC ≤ SI ≤ LVC and
    /// FVC ≤ VC85 ≤ LVC ≤ PLT.
    pub fn well_ordered(&self) -> bool {
        let eps = 1e-6;
        self.fvc_ms <= self.si_ms + eps
            && self.si_ms <= self.lvc_ms + eps
            && self.fvc_ms <= self.vc85_ms + eps
            && self.vc85_ms <= self.lvc_ms + eps
            && self.lvc_ms <= self.plt_ms + eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline(points: &[(u64, f64)]) -> VisualTimeline {
        let mut t = VisualTimeline::new();
        for &(ms, v) in points {
            t.push(SimTime::from_millis(ms), v);
        }
        t
    }

    #[test]
    fn metrics_from_simple_load() {
        let tl = timeline(&[(120, 0.3), (400, 0.9), (800, 1.0)]);
        let m = MetricSet::from_timeline(&tl, SimTime::from_millis(950));
        assert_eq!(m.fvc_ms, 120.0);
        assert_eq!(m.lvc_ms, 800.0);
        assert_eq!(m.vc85_ms, 400.0);
        assert_eq!(m.plt_ms, 950.0);
        assert!(m.well_ordered(), "{m:?}");
    }

    #[test]
    fn get_matches_fields() {
        let tl = timeline(&[(100, 1.0)]);
        let m = MetricSet::from_timeline(&tl, SimTime::from_millis(100));
        for metric in Metric::ALL {
            assert!(m.get(metric) > 0.0, "{metric}");
        }
        assert_eq!(m.get(Metric::Si), m.si_ms);
    }

    #[test]
    fn names_in_figure6_order() {
        let names: Vec<_> = Metric::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["FVC", "SI", "VC85", "LVC", "PLT"]);
    }

    #[test]
    fn ordering_violated_when_plt_precedes_lvc() {
        let tl = timeline(&[(100, 1.0)]);
        let m = MetricSet::from_timeline(&tl, SimTime::from_millis(50));
        assert!(!m.well_ordered());
    }
}
