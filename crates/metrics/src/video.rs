//! Video recordings of loading processes — the study stimulus.
//!
//! The paper records the browser window while each site loads ≥31
//! times, derives the technical metrics per run and then selects "a
//! video that closely fits a 'typical' recording by taking the video
//! that is closest to the average PLT" (§3). A [`Recording`] here is
//! the visual-completeness curve sampled at a video frame rate plus
//! the run's metric set — everything a (simulated) participant can
//! perceive.

use crate::metrics::MetricSet;
use crate::visual::VisualTimeline;
use pq_sim::{SimDuration, SimTime};

/// A rendered video of one page load.
#[derive(Clone, Debug)]
pub struct Recording {
    /// Frames per second of the recording.
    pub fps: u32,
    /// Visual completeness per frame, from t=0 to past the last visual
    /// change.
    pub frames: Vec<f64>,
    /// The run's technical metrics.
    pub metrics: MetricSet,
}

impl Recording {
    /// Render a timeline into a recording at `fps`, padding one second
    /// of final-state frames (the study videos keep showing the loaded
    /// page briefly).
    pub fn render(timeline: &VisualTimeline, plt: SimTime, fps: u32) -> Recording {
        let fps = fps.max(1);
        let end =
            timeline.last_change().unwrap_or(SimTime::ZERO).max(plt) + SimDuration::from_secs(1);
        let frame_ns = 1_000_000_000u64 / u64::from(fps);
        let n = (end.as_nanos() / frame_ns + 1) as usize;
        let frames = (0..n)
            .map(|i| timeline.at(SimTime::from_nanos(i as u64 * frame_ns)))
            .collect();
        Recording {
            fps,
            frames,
            metrics: MetricSet::from_timeline(timeline, plt),
        }
    }

    /// Video duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.frames.len() as f64 / f64::from(self.fps)
    }

    /// Visual completeness at playback time `secs`.
    pub fn vc_at(&self, secs: f64) -> f64 {
        if self.frames.is_empty() || secs < 0.0 {
            return 0.0;
        }
        let idx = (secs * f64::from(self.fps)) as usize;
        self.frames[idx.min(self.frames.len() - 1)]
    }
}

/// Select the run whose PLT is closest to the mean PLT — the paper's
/// "typical video" rule. Returns the index into `runs`.
pub fn typical_run(runs: &[MetricSet]) -> Option<usize> {
    if runs.is_empty() {
        return None;
    }
    let mean = runs.iter().map(|m| m.plt_ms).sum::<f64>() / runs.len() as f64;
    runs.iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            (a.plt_ms - mean)
                .abs()
                .partial_cmp(&(b.plt_ms - mean).abs())
                .expect("PLT is finite")
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline(points: &[(u64, f64)]) -> VisualTimeline {
        let mut t = VisualTimeline::new();
        for &(ms, v) in points {
            t.push(SimTime::from_millis(ms), v);
        }
        t
    }

    fn metrics(plt: f64) -> MetricSet {
        MetricSet {
            fvc_ms: plt / 4.0,
            lvc_ms: plt * 0.9,
            si_ms: plt / 2.0,
            vc85_ms: plt * 0.8,
            plt_ms: plt,
        }
    }

    #[test]
    fn render_samples_curve() {
        let tl = timeline(&[(500, 0.5), (1000, 1.0)]);
        let rec = Recording::render(&tl, SimTime::from_millis(1000), 10);
        // 2 s of video at 10 fps (1 s load + 1 s padding).
        assert!(rec.frames.len() >= 20, "frames {}", rec.frames.len());
        assert_eq!(rec.vc_at(0.0), 0.0);
        assert_eq!(rec.vc_at(0.7), 0.5);
        assert_eq!(rec.vc_at(1.5), 1.0);
        assert_eq!(rec.vc_at(100.0), 1.0, "clamped past end");
        assert!(rec.duration_secs() >= 2.0);
    }

    #[test]
    fn typical_run_picks_closest_to_mean() {
        let runs = vec![metrics(900.0), metrics(1000.0), metrics(2000.0)];
        // Mean = 1300 → closest is 1000 (index 1).
        assert_eq!(typical_run(&runs), Some(1));
        assert_eq!(typical_run(&[]), None);
        assert_eq!(typical_run(&runs[..1]), Some(0));
    }

    #[test]
    fn zero_fps_clamped() {
        let tl = timeline(&[(100, 1.0)]);
        let rec = Recording::render(&tl, SimTime::from_millis(100), 0);
        assert_eq!(rec.fps, 1);
        assert!(!rec.frames.is_empty());
    }

    #[test]
    fn negative_playback_time() {
        let tl = timeline(&[(100, 1.0)]);
        let rec = Recording::render(&tl, SimTime::from_millis(100), 30);
        assert_eq!(rec.vc_at(-1.0), 0.0);
    }
}
