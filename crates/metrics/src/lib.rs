//! # pq-metrics — visual Web-performance metrics
//!
//! The measurement layer of the *Perceiving QUIC* reproduction: turns a
//! page-load's paint events into the visual-completeness curve, the
//! five technical metrics the paper analyses (FVC, SI, VC85, LVC, PLT)
//! and the "video recordings" shown to study participants, including
//! the closest-to-mean-PLT typical-run selection of §3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod video;
pub mod visual;

pub use metrics::{Metric, MetricSet};
pub use video::{typical_run, Recording};
pub use visual::VisualTimeline;
