//! The visual-completeness timeline of one page-load.
//!
//! The browser model emits paint events; this module normalizes them
//! into a monotone step function `VC(t) ∈ [0, 1]` — the same curve
//! visual-metrics tools extract from screen recordings frame by frame.

use pq_sim::SimTime;

/// A monotone step function of visual completeness over time.
#[derive(Clone, Debug, Default)]
pub struct VisualTimeline {
    /// `(time, completeness)` steps, strictly increasing in time,
    /// non-decreasing in completeness.
    steps: Vec<(SimTime, f64)>,
}

impl VisualTimeline {
    /// Empty timeline (blank screen forever).
    pub fn new() -> Self {
        VisualTimeline::default()
    }

    /// Record that visual completeness reached `vc` at `at`.
    /// Out-of-order or regressing inputs are clamped to keep the curve
    /// monotone (a renderer never un-paints).
    pub fn push(&mut self, at: SimTime, vc: f64) {
        let vc = vc.clamp(0.0, 1.0);
        let prev = self.completeness();
        let vc = vc.max(prev);
        if let Some(&mut (t_last, ref mut v_last)) = self.steps.last_mut() {
            if at <= t_last {
                *v_last = vc;
                return;
            }
        }
        if vc > prev || self.steps.is_empty() {
            self.steps.push((at, vc));
        }
    }

    /// Current (final) completeness.
    pub fn completeness(&self) -> f64 {
        self.steps.last().map_or(0.0, |&(_, v)| v)
    }

    /// The steps recorded so far.
    pub fn steps(&self) -> &[(SimTime, f64)] {
        &self.steps
    }

    /// Completeness at an arbitrary time.
    pub fn at(&self, t: SimTime) -> f64 {
        match self.steps.partition_point(|&(st, _)| st <= t) {
            0 => 0.0,
            i => self.steps[i - 1].1,
        }
    }

    /// First time completeness became non-zero (First Visual Change).
    pub fn first_change(&self) -> Option<SimTime> {
        self.steps.iter().find(|&&(_, v)| v > 0.0).map(|&(t, _)| t)
    }

    /// Last time completeness changed (Last Visual Change).
    pub fn last_change(&self) -> Option<SimTime> {
        self.steps.last().map(|&(t, _)| t)
    }

    /// First time completeness reached `threshold` (e.g. 0.85 → VC85).
    pub fn time_to(&self, threshold: f64) -> Option<SimTime> {
        self.steps
            .iter()
            .find(|&&(_, v)| v >= threshold - 1e-12)
            .map(|&(t, _)| t)
    }

    /// Speed Index: `∫ (1 − VC(t)) dt` from 0 to the last change,
    /// in milliseconds (the unit SI is conventionally reported in).
    pub fn speed_index_ms(&self) -> f64 {
        let mut si = 0.0;
        let mut prev_t = SimTime::ZERO;
        let mut prev_v = 0.0;
        for &(t, v) in &self.steps {
            si += (1.0 - prev_v) * t.saturating_since(prev_t).as_millis_f64();
            prev_t = t;
            prev_v = v;
        }
        si
    }

    /// True when the page finished painting (VC reached 1).
    pub fn complete(&self) -> bool {
        self.completeness() >= 1.0 - 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl(points: &[(u64, f64)]) -> VisualTimeline {
        let mut t = VisualTimeline::new();
        for &(ms, v) in points {
            t.push(SimTime::from_millis(ms), v);
        }
        t
    }

    #[test]
    fn basic_curve() {
        let t = tl(&[(100, 0.3), (200, 0.8), (300, 1.0)]);
        assert_eq!(t.first_change(), Some(SimTime::from_millis(100)));
        assert_eq!(t.last_change(), Some(SimTime::from_millis(300)));
        assert_eq!(t.time_to(0.85), Some(SimTime::from_millis(300)));
        assert_eq!(t.time_to(0.5), Some(SimTime::from_millis(200)));
        assert!(t.complete());
    }

    #[test]
    fn speed_index_rectangle_rule() {
        // VC jumps to 1.0 at 500 ms → SI = 500.
        let t = tl(&[(500, 1.0)]);
        assert!((t.speed_index_ms() - 500.0).abs() < 1e-9);
        // Half at 200, full at 600 → 200 + 0.5·400 = 400.
        let t = tl(&[(200, 0.5), (600, 1.0)]);
        assert!((t.speed_index_ms() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn si_bounded_by_fvc_and_lvc() {
        let t = tl(&[(100, 0.2), (250, 0.7), (900, 1.0)]);
        let si = t.speed_index_ms();
        assert!(si >= 100.0, "SI ≥ FVC");
        assert!(si <= 900.0, "SI ≤ LVC");
    }

    #[test]
    fn monotonicity_enforced() {
        let mut t = VisualTimeline::new();
        t.push(SimTime::from_millis(100), 0.5);
        t.push(SimTime::from_millis(200), 0.3); // regression ignored
        assert_eq!(t.completeness(), 0.5);
        assert_eq!(t.steps().len(), 1, "no new step for a non-increase");
    }

    #[test]
    fn same_time_updates_last_step() {
        let mut t = VisualTimeline::new();
        t.push(SimTime::from_millis(100), 0.5);
        t.push(SimTime::from_millis(100), 0.7);
        assert_eq!(t.steps().len(), 1);
        assert_eq!(t.completeness(), 0.7);
    }

    #[test]
    fn at_interpolates_as_step() {
        let t = tl(&[(100, 0.4), (300, 1.0)]);
        assert_eq!(t.at(SimTime::from_millis(50)), 0.0);
        assert_eq!(t.at(SimTime::from_millis(100)), 0.4);
        assert_eq!(t.at(SimTime::from_millis(299)), 0.4);
        assert_eq!(t.at(SimTime::from_millis(1000)), 1.0);
    }

    #[test]
    fn empty_timeline() {
        let t = VisualTimeline::new();
        assert_eq!(t.first_change(), None);
        assert_eq!(t.last_change(), None);
        assert_eq!(t.speed_index_ms(), 0.0);
        assert!(!t.complete());
        assert_eq!(t.at(SimTime::from_secs(5)), 0.0);
    }

    #[test]
    fn clamps_out_of_range() {
        let mut t = VisualTimeline::new();
        t.push(SimTime::from_millis(10), -0.5);
        t.push(SimTime::from_millis(20), 1.7);
        assert_eq!(t.completeness(), 1.0);
    }
}
