//! Property-based tests for the visual-metrics layer.

use pq_metrics::{typical_run, MetricSet, Recording, VisualTimeline};
use pq_sim::SimTime;
use proptest::prelude::*;

fn timeline_from(events: &[(u64, f64)]) -> VisualTimeline {
    let mut tl = VisualTimeline::new();
    for &(ms, vc) in events {
        tl.push(SimTime::from_millis(ms), vc);
    }
    tl
}

proptest! {
    /// The VC curve is monotone in time no matter the input order or
    /// values.
    #[test]
    fn timeline_is_monotone(events in prop::collection::vec((0u64..10_000, -0.5f64..1.5), 1..100)) {
        let tl = timeline_from(&events);
        let mut prev = 0.0;
        for &(t, v) in tl.steps() {
            prop_assert!(v >= prev, "regression at {t:?}");
            prop_assert!((0.0..=1.0).contains(&v));
            prev = v;
        }
        // Sampled curve is monotone too.
        let mut last = 0.0;
        for ms in (0..10_500).step_by(137) {
            let v = tl.at(SimTime::from_millis(ms));
            prop_assert!(v >= last);
            last = v;
        }
    }

    /// For complete loads: FVC ≤ SI ≤ LVC (Speed Index is a weighted
    /// average of paint times).
    #[test]
    fn si_bounded_by_fvc_and_lvc(mut events in prop::collection::vec((1u64..30_000, 0.01f64..1.0), 1..60)) {
        events.sort_by_key(|e| e.0);
        let mut tl = timeline_from(&events);
        let end = events.last().unwrap().0 + 1;
        tl.push(SimTime::from_millis(end), 1.0);
        let fvc = tl.first_change().unwrap().as_millis_f64();
        let lvc = tl.last_change().unwrap().as_millis_f64();
        let si = tl.speed_index_ms();
        prop_assert!(si >= fvc - 1e-9, "SI {si} < FVC {fvc}");
        prop_assert!(si <= lvc + 1e-9, "SI {si} > LVC {lvc}");
    }

    /// MetricSet::well_ordered holds for every complete monotone load.
    #[test]
    fn metric_ordering_invariant(mut events in prop::collection::vec((1u64..30_000, 0.01f64..1.0), 1..60), plt_extra in 0u64..5_000) {
        events.sort_by_key(|e| e.0);
        let mut tl = timeline_from(&events);
        let end = events.last().unwrap().0 + 1;
        tl.push(SimTime::from_millis(end), 1.0);
        let plt = SimTime::from_millis(end + plt_extra);
        let m = MetricSet::from_timeline(&tl, plt);
        prop_assert!(m.well_ordered(), "{m:?}");
    }

    /// A rendered recording reproduces the timeline at frame times and
    /// its metrics match the source.
    #[test]
    fn recording_samples_match_timeline(mut events in prop::collection::vec((1u64..5_000, 0.01f64..1.0), 1..30), fps in 1u32..60) {
        events.sort_by_key(|e| e.0);
        let mut tl = timeline_from(&events);
        let end = events.last().unwrap().0 + 1;
        tl.push(SimTime::from_millis(end), 1.0);
        let rec = Recording::render(&tl, SimTime::from_millis(end), fps);
        prop_assert!((rec.metrics.si_ms - tl.speed_index_ms()).abs() < 1e-9);
        // Frames are monotone and end at 1.0.
        for w in rec.frames.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
        prop_assert!((rec.frames.last().unwrap() - 1.0).abs() < 1e-9);
    }

    /// typical_run picks an index whose PLT distance to the mean is
    /// minimal.
    #[test]
    fn typical_run_is_argmin(plts in prop::collection::vec(10.0f64..100_000.0, 1..40)) {
        let runs: Vec<MetricSet> = plts
            .iter()
            .map(|&p| MetricSet {
                fvc_ms: p / 4.0,
                si_ms: p / 2.0,
                vc85_ms: p * 0.8,
                lvc_ms: p * 0.9,
                plt_ms: p,
            })
            .collect();
        let mean = plts.iter().sum::<f64>() / plts.len() as f64;
        let idx = typical_run(&runs).unwrap();
        let chosen = (runs[idx].plt_ms - mean).abs();
        for r in &runs {
            prop_assert!(chosen <= (r.plt_ms - mean).abs() + 1e-9);
        }
    }
}
