//! Page-load benchmarks: how fast the testbed simulates one website
//! visit, per protocol and network. (These measure *simulator*
//! throughput; the simulated times are what the figure binaries
//! report.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pq_sim::NetworkKind;
use pq_transport::Protocol;
use pq_web::{catalogue, load_page, LoadOptions};

fn bench_pageload_protocols(c: &mut Criterion) {
    let site = catalogue::site("wikipedia.org").expect("corpus site");
    let net = NetworkKind::Dsl.config();
    let opts = LoadOptions::default();
    let mut g = c.benchmark_group("pageload_dsl_wikipedia");
    for proto in Protocol::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(proto.label()),
            &proto,
            |b, &p| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    load_page(&site, &net, p, seed, &opts).metrics.plt_ms
                })
            },
        );
    }
    g.finish();
}

fn bench_pageload_networks(c: &mut Criterion) {
    let site = catalogue::site("gov.uk").expect("corpus site");
    let opts = LoadOptions::default();
    let mut g = c.benchmark_group("pageload_quic_govuk");
    g.sample_size(20);
    for kind in NetworkKind::ALL {
        let net = kind.config();
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &net, |b, net| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                load_page(&site, net, Protocol::Quic, seed, &opts)
                    .metrics
                    .plt_ms
            })
        });
    }
    g.finish();
}

fn bench_pageload_site_sizes(c: &mut Criterion) {
    let opts = LoadOptions::default();
    let net = NetworkKind::Lte.config();
    let mut g = c.benchmark_group("pageload_lte_by_site");
    g.sample_size(15);
    for name in ["apache.org", "gov.uk", "etsy.com", "nytimes.com"] {
        let site = catalogue::site(name).expect("corpus site");
        g.bench_with_input(BenchmarkId::from_parameter(name), &site, |b, site| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                load_page(site, &net, Protocol::TcpPlus, seed, &opts)
                    .metrics
                    .plt_ms
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_pageload_protocols,
    bench_pageload_networks,
    bench_pageload_site_sizes
);
criterion_main!(benches);
