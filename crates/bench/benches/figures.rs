//! End-to-end experiment benchmarks: one bench per paper artefact,
//! each running the (smoke-scale) pipeline slice that regenerates it.
//! `cargo bench -p pq-bench --bench figures` therefore exercises the
//! code behind every table and figure.

use criterion::{criterion_group, criterion_main, Criterion};
use pq_sim::NetworkKind;
use pq_study::{
    ab_shares, anova_across_protocols, fig3_agreement, metric_correlation, population, run_study,
    Environment, Funnel, Group, StimulusSet, StudyKind,
};
use pq_transport::Protocol;
use pq_web::{catalogue, Website};

fn small_stimuli() -> StimulusSet {
    let sites: Vec<Website> = ["wikipedia.org", "gov.uk", "apache.org"]
        .iter()
        .map(|n| catalogue::site(n).expect("corpus"))
        .collect();
    StimulusSet::build(&sites, &NetworkKind::ALL, &Protocol::ALL, 3, 42)
}

fn bench_stimulus_production(c: &mut Criterion) {
    // The Table-2-testbed + §3 video pipeline (the expensive stage).
    let sites: Vec<Website> = vec![catalogue::site("wikipedia.org").expect("corpus")];
    c.bench_function("stimuli_1site_4nets_5stacks_3runs", |b| {
        b.iter(|| {
            StimulusSet::build(&sites, &NetworkKind::ALL, &Protocol::ALL, 3, 7)
                .iter()
                .count()
        })
    });
}

fn bench_table3_funnel(c: &mut Criterion) {
    c.bench_function("table3_funnel_microworker_rating", |b| {
        b.iter(|| {
            let pop = population(StudyKind::Rating, Group::MicroWorker, 3);
            let records: Vec<_> = pop.iter().map(|s| s.conformance).collect();
            Funnel::apply(&records).survivors()
        })
    });
}

fn bench_full_study_and_figures(c: &mut Criterion) {
    let stimuli = small_stimuli();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("study_all_groups", |b| {
        b.iter(|| run_study(&stimuli, 9).ab.len())
    });

    let data = run_study(&stimuli, 9);
    g.bench_function("fig3_agreement", |b| {
        b.iter(|| fig3_agreement(&data.ratings, 0.99).len())
    });
    g.bench_function("fig4_shares", |b| {
        b.iter(|| {
            let mut n = 0;
            for net in NetworkKind::ALL {
                for pair in Protocol::AB_PAIRS {
                    if ab_shares(&data.ab, net, pair, &[Group::MicroWorker]).is_some() {
                        n += 1;
                    }
                }
            }
            n
        })
    });
    g.bench_function("fig5_anova", |b| {
        b.iter(|| {
            anova_across_protocols(
                &data.ratings,
                Environment::Plane,
                Some(NetworkKind::Mss),
                &Protocol::ALL,
                Group::MicroWorker,
            )
            .map(|r| r.p)
        })
    });
    g.bench_function("fig6_correlations", |b| {
        b.iter(|| {
            metric_correlation(
                &data.ratings,
                &stimuli,
                NetworkKind::Mss,
                Protocol::Quic,
                pq_metrics::Metric::Si,
                Group::MicroWorker,
                &[Environment::Plane],
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_stimulus_production,
    bench_table3_funnel,
    bench_full_study_and_figures
);
criterion_main!(benches);
