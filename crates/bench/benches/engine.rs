//! Micro-benchmarks of the simulation substrate: the event queue, the
//! RNG, range-set algebra and link shaping — the hot paths every
//! experiment runs millions of times.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use pq_sim::{
    ConnId, EventQueue, Link, LinkConfig, Packet, PushOutcome, SimDuration, SimRng, SimTime,
};
use pq_transport::RangeSet;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_pop_10k", |b| {
        b.iter_batched(
            || {
                let mut rng = SimRng::new(7);
                (0..10_000u64)
                    .map(|_| SimTime::from_nanos(rng.below(1_000_000_000)))
                    .collect::<Vec<_>>()
            },
            |times| {
                let mut q = EventQueue::new();
                for (i, t) in times.into_iter().enumerate() {
                    q.schedule(t, i);
                }
                let mut n = 0;
                while q.pop().is_some() {
                    n += 1;
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("u64_1k", |b| {
        let mut rng = SimRng::new(3);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            acc
        })
    });
    g.bench_function("normal_1k", |b| {
        let mut rng = SimRng::new(3);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1_000 {
                acc += rng.normal();
            }
            acc
        })
    });
    g.finish();
}

fn bench_rangeset(c: &mut Criterion) {
    let mut g = c.benchmark_group("rangeset");
    // The SACK-scoreboard pattern: scattered inserts + cumulative trims.
    g.bench_function("scoreboard_churn", |b| {
        let mut rng = SimRng::new(11);
        let inserts: Vec<(u64, u64)> = (0..500)
            .map(|_| {
                let s = rng.below(1_000_000);
                (s, s + 1460)
            })
            .collect();
        b.iter(|| {
            let mut rs = RangeSet::new();
            for &(s, e) in &inserts {
                rs.insert(s, e);
            }
            for cut in (0..1_000_000).step_by(100_000) {
                rs.remove_below(cut);
            }
            rs.covered()
        })
    });
    g.finish();
}

fn bench_link(c: &mut Criterion) {
    let mut g = c.benchmark_group("link");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("saturated_10k_packets", |b| {
        b.iter(|| {
            let cfg = LinkConfig::with_queue_ms(25_000_000, SimDuration::from_millis(12), 0.0, 200);
            let mut link: Link<u32> = Link::new(cfg, SimRng::new(5));
            let mut now = SimTime::ZERO;
            let mut next = match link.push(now, Packet::new(ConnId(0), 1500, 0)) {
                PushOutcome::StartedTx(t) => t,
                _ => unreachable!(),
            };
            let mut delivered = 0u64;
            for i in 0..10_000u32 {
                now = next;
                link.push(now, Packet::new(ConnId(0), 1500, i));
                let txd = link.on_tx_done(now);
                if txd.delivery.is_some() {
                    delivered += 1;
                }
                next = txd
                    .next_tx_done
                    .unwrap_or(now + SimDuration::from_millis(1));
            }
            delivered
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_rng,
    bench_rangeset,
    bench_link
);
criterion_main!(benches);
