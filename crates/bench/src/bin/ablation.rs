//! Design-choice ablations: conformance filtering value and session accounting.

fn main() {
    let e = pq_bench::run_experiment_from_env("ablation");
    pq_bench::report::print_ablation(&e);
}
