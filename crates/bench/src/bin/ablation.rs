//! Design-choice ablations: conformance filtering value and session accounting.

#![forbid(unsafe_code)]

fn main() {
    pq_obs::init_from_env();
    let e = pq_bench::run_experiment_from_env("ablation");
    pq_bench::report::print_ablation(&e);
    pq_obs::flush_to_env();
}
