//! Regenerates Figure 6 (Pearson metric-vote correlation heatmap).

fn main() {
    let e = pq_bench::run_experiment_from_env("fig6");
    pq_bench::report::print_fig6(&e);
}
