//! Regenerates Figure 6 (Pearson metric-vote correlation heatmap).

#![forbid(unsafe_code)]

fn main() {
    pq_obs::init_from_env();
    let e = pq_bench::run_experiment_from_env("fig6");
    pq_bench::report::print_fig6(&e);
    pq_obs::flush_to_env();
}
