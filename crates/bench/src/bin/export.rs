//! Exports the raw study data as JSON — mirroring the paper's public
//! data release (https://study.netray.io). Writes `study_data.json`
//! in the working directory (or the path given as the first argument).
//!
//! ```sh
//! PQ_SCALE=reduced cargo run --release -p pq-bench --bin export -- out.json
//! ```

use serde_json::json;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "study_data.json".into());
    let e = pq_bench::run_experiment_from_env("export");

    let ab: Vec<_> = e
        .data
        .ab
        .iter()
        .map(|v| {
            json!({
                "group": v.group.name(),
                "participant": v.participant,
                "site": e.stimuli.site_names[v.site as usize],
                "network": v.network.name(),
                "pair": [v.pair.0.label(), v.pair.1.label()],
                "choice": match v.choice {
                    pq_study::AbChoice::First => "first",
                    pq_study::AbChoice::NoDifference => "no_difference",
                    pq_study::AbChoice::Second => "second",
                },
                "confidence": v.confidence,
                "replays": v.replays,
                "valid": v.valid,
            })
        })
        .collect();

    let ratings: Vec<_> = e
        .data
        .ratings
        .iter()
        .map(|v| {
            json!({
                "group": v.group.name(),
                "participant": v.participant,
                "site": e.stimuli.site_names[v.site as usize],
                "network": v.network.name(),
                "protocol": v.protocol.label(),
                "environment": v.environment.name(),
                "speed": v.speed,
                "quality": v.quality,
                "valid": v.valid,
            })
        })
        .collect();

    let stimuli: Vec<_> = e
        .stimuli
        .iter()
        .map(|s| {
            json!({
                "site": e.stimuli.site_names[s.condition.site as usize],
                "network": s.condition.network.name(),
                "protocol": s.condition.protocol.label(),
                "runs": s.runs,
                "fvc_ms": s.metrics.fvc_ms,
                "si_ms": s.metrics.si_ms,
                "vc85_ms": s.metrics.vc85_ms,
                "lvc_ms": s.metrics.lvc_ms,
                "plt_ms": s.metrics.plt_ms,
                "mean_plt_ms": s.mean_plt_ms,
                "mean_retransmits": s.mean_retransmits,
            })
        })
        .collect();

    let funnel = |f: &pq_study::Funnel| json!({"recruited": f.recruited, "after": f.after});
    let doc = json!({
        "paper": "Perceiving QUIC: Do Users Notice or Even Care? (CoNEXT 2019)",
        "generator": "perceiving-quic reproduction",
        "scale": e.scale.label(),
        "seed": e.seed,
        "funnels": {
            "ab": e.data.funnel_ab.iter().map(funnel).collect::<Vec<_>>(),
            "rating": e.data.funnel_rating.iter().map(funnel).collect::<Vec<_>>(),
        },
        "stimuli": stimuli,
        "ab_votes": ab,
        "rating_votes": ratings,
    });

    std::fs::write(&path, serde_json::to_string_pretty(&doc).expect("serializable"))
        .expect("write output file");
    eprintln!(
        "[export] wrote {path}: {} A/B votes, {} ratings, {} stimuli",
        e.data.ab.len(),
        e.data.ratings.len(),
        e.stimuli.iter().count()
    );
}
