//! Exports the raw study data as JSON — mirroring the paper's public
//! data release (https://study.netray.io). Writes `study_data.json`
//! in the working directory (or the path given as the first argument).
//!
//! ```sh
//! PQ_SCALE=reduced cargo run --release -p pq-bench --bin export -- out.json
//! ```

#![forbid(unsafe_code)]

use pq_obs::json::Value;

fn main() {
    pq_obs::init_from_env();
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "study_data.json".into());
    let e = pq_bench::run_experiment_from_env("export");

    let ab: Vec<Value> = e
        .data
        .ab
        .iter()
        .map(|v| {
            Value::obj()
                .with("group", v.group.name())
                .with("participant", v.participant)
                .with("site", e.stimuli.site_names[v.site as usize].as_str())
                .with("network", v.network.name())
                .with(
                    "pair",
                    vec![Value::from(v.pair.0.label()), Value::from(v.pair.1.label())],
                )
                .with(
                    "choice",
                    match v.choice {
                        pq_study::AbChoice::First => "first",
                        pq_study::AbChoice::NoDifference => "no_difference",
                        pq_study::AbChoice::Second => "second",
                    },
                )
                .with("confidence", v.confidence)
                .with("replays", u64::from(v.replays))
                .with("valid", v.valid)
        })
        .collect();

    let ratings: Vec<Value> = e
        .data
        .ratings
        .iter()
        .map(|v| {
            Value::obj()
                .with("group", v.group.name())
                .with("participant", v.participant)
                .with("site", e.stimuli.site_names[v.site as usize].as_str())
                .with("network", v.network.name())
                .with("protocol", v.protocol.label())
                .with("environment", v.environment.name())
                .with("speed", v.speed)
                .with("quality", v.quality)
                .with("valid", v.valid)
        })
        .collect();

    let stimuli: Vec<Value> = e
        .stimuli
        .iter()
        .map(|s| {
            Value::obj()
                .with(
                    "site",
                    e.stimuli.site_names[s.condition.site as usize].as_str(),
                )
                .with("network", s.condition.network.name())
                .with("protocol", s.condition.protocol.label())
                .with("runs", s.runs as u64)
                .with("fvc_ms", s.metrics.fvc_ms)
                .with("si_ms", s.metrics.si_ms)
                .with("vc85_ms", s.metrics.vc85_ms)
                .with("lvc_ms", s.metrics.lvc_ms)
                .with("plt_ms", s.metrics.plt_ms)
                .with("mean_plt_ms", s.mean_plt_ms)
                .with("mean_retransmits", s.mean_retransmits)
        })
        .collect();

    let funnel = |f: &pq_study::Funnel| {
        Value::obj().with("recruited", u64::from(f.recruited)).with(
            "after",
            f.after
                .iter()
                .map(|&n| Value::from(u64::from(n)))
                .collect::<Vec<Value>>(),
        )
    };
    let doc = Value::obj()
        .with(
            "paper",
            "Perceiving QUIC: Do Users Notice or Even Care? (CoNEXT 2019)",
        )
        .with("generator", "perceiving-quic reproduction")
        .with("scale", e.scale.label())
        .with("seed", e.seed)
        .with(
            "funnels",
            Value::obj()
                .with(
                    "ab",
                    e.data.funnel_ab.iter().map(funnel).collect::<Vec<Value>>(),
                )
                .with(
                    "rating",
                    e.data
                        .funnel_rating
                        .iter()
                        .map(funnel)
                        .collect::<Vec<Value>>(),
                ),
        )
        .with("stimuli", stimuli)
        .with("ab_votes", ab)
        .with("rating_votes", ratings);

    pq_ckpt::atomic_write(&path, doc.to_pretty().as_bytes()).expect("write output file");
    eprintln!(
        "[export] wrote {path}: {} A/B votes, {} ratings, {} stimuli",
        e.data.ab.len(),
        e.data.ratings.len(),
        e.stimuli.iter().count()
    );
    pq_obs::flush_to_env();
}
