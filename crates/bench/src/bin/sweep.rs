//! Parameter sweep: where does QUIC's perceptible advantage live?
//!
//! The paper samples four points of the network space (Table 2) and
//! concludes that QUIC's edge grows as networks get slower and
//! lossier. This sweep maps the whole plane: median Speed-Index ratio
//! QUIC/TCP+ over a bandwidth × loss grid (and an RTT column), with
//! the ~7.5 % just-noticeable-difference contour marked — cells where
//! users would notice per the Study-1 psychophysics.
//!
//! The grid cells are independent page-load simulations seeded purely
//! by the cell, so they execute on the `pq-par` work-stealing pool
//! (`PQ_JOBS` workers) and print in canonical order with bit-identical
//! values at any worker count.
//!
//! ```sh
//! PQ_JOBS=8 cargo run --release -p pq-bench --bin sweep
//! ```

#![forbid(unsafe_code)]

use pq_sim::{NetworkConfig, NetworkKind, SimDuration};
use pq_transport::Protocol;
use pq_web::{catalogue, load_page, LoadOptions};

const RUNS: u64 = 7;

fn median(mut v: Vec<f64>) -> f64 {
    // total_cmp: NaN sorts high instead of panicking the whole sweep.
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn si_ratio(site: &pq_web::Website, net: &NetworkConfig) -> f64 {
    let opts = LoadOptions::default();
    let si = |p: Protocol| {
        median(
            (0..RUNS)
                .map(|s| load_page(site, net, p, 9000 + s, &opts).metrics.si_ms)
                .collect(),
        )
    };
    si(Protocol::TcpPlus) / si(Protocol::Quic)
}

fn cell(ratio: f64) -> String {
    // Mark cells beyond the mean JND (≈ 7.5 % in log-time).
    let mark = if ratio > 1.075 {
        "*" // QUIC noticeably faster
    } else if ratio < 1.0 / 1.075 {
        "!" // TCP+ noticeably faster
    } else {
        " "
    };
    format!("{ratio:>6.3}{mark}")
}

fn main() {
    pq_obs::init_from_env();
    let Some(site) = catalogue::site("gov.uk") else {
        eprintln!("[sweep] corpus site gov.uk missing — corpus changed? aborting");
        std::process::exit(1);
    };
    let jobs = pq_par::jobs();
    eprintln!("[sweep] jobs={jobs}");
    println!(
        "median SI(TCP+) / SI(QUIC) for gov.uk  (*: QUIC side of the ~7.5% JND, !: TCP+ side)\n"
    );

    println!("— bandwidth × loss (RTT 100 ms, queue 200 ms) —");
    let bands = [
        500_000u64, 1_000_000, 2_000_000, 5_000_000, 10_000_000, 25_000_000,
    ];
    let losses = [0.0, 0.01, 0.02, 0.04, 0.06];

    // Scatter the whole bandwidth × loss grid over the worker pool
    // (row-major, so gathered results print in table order).
    let grid: Vec<NetworkConfig> = bands
        .iter()
        .flat_map(|&down| {
            losses.iter().map(move |&loss| NetworkConfig {
                kind: NetworkKind::Lte,
                up_bps: down / 3,
                down_bps: down,
                min_rtt: SimDuration::from_millis(100),
                loss,
                queue_ms: 200,
            })
        })
        .collect();
    let ratios = pq_par::par_map(&grid, |net| si_ratio(&site, net));

    print!("{:>10}", "down\\loss");
    for l in losses {
        print!(" {:>6.0}%", l * 100.0);
    }
    println!();
    for (bi, down) in bands.iter().enumerate() {
        print!("{:>8.1}Mb", *down as f64 / 1e6);
        for li in 0..losses.len() {
            print!(" {}", cell(ratios[bi * losses.len() + li]));
        }
        println!();
    }

    println!("\n— RTT sweep (10 Mbps down, no loss) —");
    print!("{:>10}", "RTT");
    let rtts = [10u64, 25, 50, 100, 200, 400, 800];
    for r in rtts {
        print!(" {r:>5}ms");
    }
    println!();
    let rtt_grid: Vec<NetworkConfig> = rtts
        .iter()
        .map(|&rtt| NetworkConfig {
            kind: NetworkKind::Lte,
            up_bps: 3_000_000,
            down_bps: 10_000_000,
            min_rtt: SimDuration::from_millis(rtt),
            loss: 0.0,
            queue_ms: 200,
        })
        .collect();
    let rtt_ratios = pq_par::par_map(&rtt_grid, |net| si_ratio(&site, net));
    print!("{:>10}", "ratio");
    for ratio in rtt_ratios {
        print!(" {}", cell(ratio));
    }
    println!();
    println!("\nExpected shape (paper takeaway): the ratio grows down-and-right");
    println!("(slower, lossier) and with RTT — QUIC's 1-RTT handshake and loss");
    println!("recovery matter most exactly where networks are worst.");
    pq_obs::flush_to_env();
}
