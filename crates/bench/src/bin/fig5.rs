//! Regenerates Figure 5 (rating means, CIs and ANOVA significance).

#![forbid(unsafe_code)]

fn main() {
    pq_obs::init_from_env();
    let e = pq_bench::run_experiment_from_env("fig5");
    pq_bench::report::print_fig5(&e);
    pq_obs::flush_to_env();
}
