//! Regenerates Table 2 (network configurations) and validates the emulation against it.

#![forbid(unsafe_code)]

fn main() {
    pq_obs::init_from_env();
    pq_bench::report::print_table2();
    pq_obs::flush_to_env();
}
