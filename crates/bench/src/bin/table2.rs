//! Regenerates Table 2 (network configurations) and validates the emulation against it.

fn main() {
    pq_bench::report::print_table2();
}
