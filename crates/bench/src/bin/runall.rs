//! Runs every table and figure regenerator in paper order, sharing a
//! single experiment execution, then writes the machine-readable run
//! manifest (`results/manifest.json`), the phase-timing regression
//! baseline (`results/BENCH_obs.json`), and one schema-versioned
//! entry in the append-only perf trajectory
//! (`results/BENCH_history.jsonl`).
//!
//! ## Crash safety
//!
//! The stimulus sweep is checkpointed through pq-ckpt's write-ahead
//! cell journal (`PQ_JOURNAL`, default `results/journal.jsonl`): every
//! completed grid cell is durable before the run proceeds, SIGINT /
//! SIGTERM checkpoint and exit cleanly (`resumable: true` in the
//! manifest, exit 0), and `PQ_RESUME=1` replays the journal — skipping
//! completed cells — to a `study_digest` bit-identical to an
//! uninterrupted run at any `PQ_JOBS`.

#![forbid(unsafe_code)]

use pq_bench::manifest::{bench_obs_edge_json, bench_obs_json, write_json, Manifest};
use pq_bench::report;
use pq_bench::trajectory::{append_history, history_entry};

/// Open (or resume) the write-ahead cell journal and bind it to this
/// run's configuration. A journal recorded under a different
/// scale/seed/faults/stacks is discarded with a warning — resuming it
/// would splice incompatible cells into the grid.
fn open_journal() {
    let resume = pq_obs::env::var("PQ_RESUME").as_deref() == Some("1");
    let path =
        pq_obs::env::var("PQ_JOURNAL").unwrap_or_else(|| "results/journal.jsonl".to_string());
    match pq_ckpt::journal_open(&path, resume) {
        Ok(replay) => {
            if resume {
                eprintln!(
                    "[runall] journal {path}: {} record(s) replayed{}",
                    replay.records,
                    if replay.torn {
                        " (torn tail truncated)"
                    } else {
                        ""
                    },
                );
            }
        }
        Err(err) => {
            eprintln!("[runall] journal {path} unavailable ({err}); checkpointing disabled");
            return;
        }
    }
    let scale = pq_bench::Scale::from_env();
    let seed = pq_bench::seed_from_env().to_string();
    let faults = pq_obs::env::var("PQ_FAULTS").unwrap_or_default();
    let stacks = pq_obs::env::var("PQ_STACKS").unwrap_or_default();
    let meta = [
        ("scale", scale.label()),
        ("seed", seed.as_str()),
        ("faults", faults.as_str()),
        ("stacks", stacks.as_str()),
    ];
    match pq_ckpt::journal_meta(&meta) {
        Ok(true) => eprintln!("[runall] journal matches this run's configuration"),
        Ok(false) => {}
        Err(err) => eprintln!("[runall] journal meta check failed: {err}"),
    }
}

/// Mirror pq-ckpt's internal durability statistics into the metrics
/// registry so they land in the exported metrics next to everything
/// else.
fn bridge_ckpt_stats() {
    let stats = pq_ckpt::stats();
    let reg = pq_obs::registry();
    for (name, v) in [
        ("ckpt.records_written", stats.records_written),
        ("ckpt.records_replayed", stats.records_replayed),
        ("ckpt.torn_truncations", stats.torn_truncations),
        ("ckpt.atomic_writes", stats.atomic_writes),
        ("ckpt.durable_appends", stats.durable_appends),
        ("ckpt.stale_temps_removed", stats.stale_temps_removed),
    ] {
        if v > 0 {
            reg.counter_add(name, v);
        }
    }
}

fn main() {
    pq_obs::init_from_env();
    pq_ckpt::install_signal_handlers();
    open_journal();
    let mut timer = pq_obs::PhaseTimer::new();
    timer.phase("table1", report::print_table1);
    timer.phase("table2", report::print_table2);
    let e = timer.phase("experiment", || pq_bench::run_experiment_from_env("runall"));

    if pq_ckpt::interrupted() {
        // Every completed cell is already durable in the journal;
        // write a progress manifest and leave the journal in place
        // for a PQ_RESUME=1 rerun. Clean exit: interruption of a
        // checkpointed run is not a failure.
        eprintln!("[runall] interrupted — skipping figures; rerun with PQ_RESUME=1 to finish");
        bridge_ckpt_stats();
        let mut manifest = Manifest::collect(&e, &timer);
        manifest.resumable = true;
        match manifest.write("results/manifest.json") {
            Ok(()) => eprintln!("[runall] wrote results/manifest.json (resumable)"),
            Err(err) => eprintln!("[runall] failed to write manifest: {err}"),
        }
        pq_ckpt::journal_detach();
        pq_obs::profile::export_metrics();
        pq_obs::flush_to_env();
        return;
    }

    timer.phase("table3", || report::print_table3(&e));
    timer.phase("fig3", || report::print_fig3(&e));
    timer.phase("fig4", || report::print_fig4(&e));
    timer.phase("fig5", || report::print_fig5(&e));
    timer.phase("fig6", || report::print_fig6(&e));
    timer.phase("agreement", || report::print_agreement(&e));
    timer.phase("ablation", || report::print_ablation(&e));

    bridge_ckpt_stats();
    let manifest = Manifest::collect(&e, &timer);
    match manifest.write("results/manifest.json") {
        Ok(()) => eprintln!("[runall] wrote results/manifest.json"),
        Err(err) => eprintln!("[runall] failed to write manifest: {err}"),
    }
    let mut bench = bench_obs_json(&timer, e.scale.label(), e.seed);
    if let Some(edge) = bench_obs_edge_json() {
        bench.set("edge", edge);
    }
    match write_json("results/BENCH_obs.json", &bench) {
        Ok(()) => eprintln!("[runall] wrote results/BENCH_obs.json"),
        Err(err) => eprintln!("[runall] failed to write BENCH_obs.json: {err}"),
    }
    match append_history(
        "results/BENCH_history.jsonl",
        &history_entry(&manifest, &bench),
    ) {
        Ok(()) => eprintln!("[runall] appended results/BENCH_history.jsonl"),
        Err(err) => eprintln!("[runall] failed to append BENCH_history.jsonl: {err}"),
    }
    // The grid completed and its results are durable: retire the
    // journal so the next run starts fresh.
    match pq_ckpt::journal_complete() {
        Ok(()) => {}
        Err(err) => eprintln!("[runall] failed to retire journal: {err}"),
    }
    pq_obs::profile::export_metrics();
    if let Some(summary) = pq_obs::profile::alloc_summary() {
        eprintln!("[runall] {summary}");
    }
    if let Some(path) = pq_obs::profile::flush_to_env() {
        eprintln!("[runall] wrote {}", path.display());
    }
    pq_obs::flush_to_env();
}
