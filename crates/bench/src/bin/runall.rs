//! Runs every table and figure regenerator in paper order, sharing a
//! single experiment execution, then writes the machine-readable run
//! manifest (`results/manifest.json`), the phase-timing regression
//! baseline (`results/BENCH_obs.json`), and one schema-versioned
//! entry in the append-only perf trajectory
//! (`results/BENCH_history.jsonl`).

#![forbid(unsafe_code)]

use pq_bench::manifest::{bench_obs_edge_json, bench_obs_json, write_json, Manifest};
use pq_bench::report;
use pq_bench::trajectory::{append_history, history_entry};

fn main() {
    pq_obs::init_from_env();
    let mut timer = pq_obs::PhaseTimer::new();
    timer.phase("table1", report::print_table1);
    timer.phase("table2", report::print_table2);
    let e = timer.phase("experiment", || pq_bench::run_experiment_from_env("runall"));
    timer.phase("table3", || report::print_table3(&e));
    timer.phase("fig3", || report::print_fig3(&e));
    timer.phase("fig4", || report::print_fig4(&e));
    timer.phase("fig5", || report::print_fig5(&e));
    timer.phase("fig6", || report::print_fig6(&e));
    timer.phase("agreement", || report::print_agreement(&e));
    timer.phase("ablation", || report::print_ablation(&e));

    let manifest = Manifest::collect(&e, &timer);
    match manifest.write("results/manifest.json") {
        Ok(()) => eprintln!("[runall] wrote results/manifest.json"),
        Err(err) => eprintln!("[runall] failed to write manifest: {err}"),
    }
    let mut bench = bench_obs_json(&timer, e.scale.label(), e.seed);
    if let Some(edge) = bench_obs_edge_json() {
        bench.set("edge", edge);
    }
    match write_json("results/BENCH_obs.json", &bench) {
        Ok(()) => eprintln!("[runall] wrote results/BENCH_obs.json"),
        Err(err) => eprintln!("[runall] failed to write BENCH_obs.json: {err}"),
    }
    match append_history(
        "results/BENCH_history.jsonl",
        &history_entry(&manifest, &bench),
    ) {
        Ok(()) => eprintln!("[runall] appended results/BENCH_history.jsonl"),
        Err(err) => eprintln!("[runall] failed to append BENCH_history.jsonl: {err}"),
    }
    pq_obs::profile::export_metrics();
    if let Some(summary) = pq_obs::profile::alloc_summary() {
        eprintln!("[runall] {summary}");
    }
    if let Some(path) = pq_obs::profile::flush_to_env() {
        eprintln!("[runall] wrote {}", path.display());
    }
    pq_obs::flush_to_env();
}
