//! Runs every table and figure regenerator in paper order, sharing a
//! single experiment execution.

fn main() {
    pq_bench::report::print_table1();
    pq_bench::report::print_table2();
    let e = pq_bench::run_experiment_from_env("runall");
    pq_bench::report::print_table3(&e);
    pq_bench::report::print_fig3(&e);
    pq_bench::report::print_fig4(&e);
    pq_bench::report::print_fig5(&e);
    pq_bench::report::print_fig6(&e);
    pq_bench::report::print_agreement(&e);
    pq_bench::report::print_ablation(&e);
}
