//! Runs every table and figure regenerator in paper order, sharing a
//! single experiment execution, then writes the machine-readable run
//! manifest (`results/manifest.json`) and the phase-timing regression
//! baseline (`results/BENCH_obs.json`).

#![forbid(unsafe_code)]

use pq_bench::manifest::{bench_obs_json, write_json, Manifest};
use pq_bench::report;

fn main() {
    pq_obs::init_from_env();
    let mut timer = pq_obs::PhaseTimer::new();
    timer.phase("table1", report::print_table1);
    timer.phase("table2", report::print_table2);
    let e = timer.phase("experiment", || pq_bench::run_experiment_from_env("runall"));
    timer.phase("table3", || report::print_table3(&e));
    timer.phase("fig3", || report::print_fig3(&e));
    timer.phase("fig4", || report::print_fig4(&e));
    timer.phase("fig5", || report::print_fig5(&e));
    timer.phase("fig6", || report::print_fig6(&e));
    timer.phase("agreement", || report::print_agreement(&e));
    timer.phase("ablation", || report::print_ablation(&e));

    let manifest = Manifest::collect(&e, &timer);
    match manifest.write("results/manifest.json") {
        Ok(()) => eprintln!("[runall] wrote results/manifest.json"),
        Err(err) => eprintln!("[runall] failed to write manifest: {err}"),
    }
    let bench = bench_obs_json(&timer, e.scale.label(), e.seed);
    match write_json("results/BENCH_obs.json", &bench) {
        Ok(()) => eprintln!("[runall] wrote results/BENCH_obs.json"),
        Err(err) => eprintln!("[runall] failed to write BENCH_obs.json: {err}"),
    }
    pq_obs::flush_to_env();
}
