//! Regenerates Table 1 (protocol configurations).

fn main() {
    pq_bench::report::print_table1();
}
