//! Regenerates Table 1 (protocol configurations).

#![forbid(unsafe_code)]

fn main() {
    pq_obs::init_from_env();
    pq_bench::report::print_table1();
    pq_obs::flush_to_env();
}
