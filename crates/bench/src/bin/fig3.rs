//! Regenerates Figure 3 (rating agreement across subject groups).

#![forbid(unsafe_code)]

fn main() {
    pq_obs::init_from_env();
    let e = pq_bench::run_experiment_from_env("fig3");
    pq_bench::report::print_fig3(&e);
    pq_obs::flush_to_env();
}
