//! Regenerates Figure 3 (rating agreement across subject groups).

fn main() {
    let e = pq_bench::run_experiment_from_env("fig3");
    pq_bench::report::print_fig3(&e);
}
