//! Regenerates Figure 4 (A/B study vote shares per pair and network).

#![forbid(unsafe_code)]

fn main() {
    pq_obs::init_from_env();
    let e = pq_bench::run_experiment_from_env("fig4");
    pq_bench::report::print_fig4(&e);
    pq_obs::flush_to_env();
}
