//! Regenerates the section 4.2 agreement statistics (answer times, replays, demographics).

#![forbid(unsafe_code)]

fn main() {
    pq_obs::init_from_env();
    let e = pq_bench::run_experiment_from_env("agreement");
    pq_bench::report::print_agreement(&e);
    pq_obs::flush_to_env();
}
