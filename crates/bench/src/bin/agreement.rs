//! Regenerates the section 4.2 agreement statistics (answer times, replays, demographics).

fn main() {
    let e = pq_bench::run_experiment_from_env("agreement");
    pq_bench::report::print_agreement(&e);
}
