//! `pq-bench-diff` — compare a current `BENCH_obs.json` against a
//! committed baseline and exit nonzero on a perf regression.
//!
//! ```sh
//! pq-bench-diff [--baseline results/BENCH_obs.json] --current new.json \
//!               [--tolerance 0.25]
//! ```
//!
//! Tolerance defaults to `PQ_BENCH_TOLERANCE` (then `0.25`). Exit
//! codes: `0` within tolerance, `1` regression detected, `2` usage or
//! IO error. CI runs this as a soft-fail report; locally it answers
//! "did my change move the needle" in one command.

#![forbid(unsafe_code)]

use pq_bench::trajectory::diff_bench;
use pq_obs::json::Value;

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Value::parse(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))
}

fn main() {
    pq_obs::init_from_env();
    let mut baseline = "results/BENCH_obs.json".to_string();
    let mut current = None;
    let mut tolerance = pq_obs::env::var_parsed::<f64>("PQ_BENCH_TOLERANCE").unwrap_or(0.25);

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let parsed = match arg.as_str() {
            "--baseline" => take("--baseline").map(|v| baseline = v),
            "--current" => take("--current").map(|v| current = Some(v)),
            "--tolerance" => take("--tolerance").and_then(|v| {
                v.parse::<f64>()
                    .map(|t| tolerance = t)
                    .map_err(|_| format!("unparsable --tolerance {v:?}"))
            }),
            "--help" | "-h" => {
                eprintln!(
                    "usage: pq-bench-diff [--baseline <json>] --current <json> [--tolerance <frac>]"
                );
                std::process::exit(0);
            }
            other => Err(format!("unknown argument {other:?}")),
        };
        if let Err(e) = parsed {
            eprintln!("[pq-bench-diff] error: {e}");
            std::process::exit(2);
        }
    }
    let Some(current) = current else {
        eprintln!("[pq-bench-diff] error: --current <json> is required");
        std::process::exit(2);
    };

    let run = (|| -> Result<bool, String> {
        let base_doc = load(&baseline)?;
        let cur_doc = load(&current)?;
        let report = diff_bench(&base_doc, &cur_doc, tolerance)?;
        eprintln!("[pq-bench-diff] {baseline} (baseline) vs {current} (current)");
        print!("{}", report.render());
        Ok(report.regressed())
    })();
    match run {
        Ok(false) => std::process::exit(0),
        Ok(true) => std::process::exit(1),
        Err(e) => {
            eprintln!("[pq-bench-diff] error: {e}");
            std::process::exit(2);
        }
    }
}
