//! Regenerates Table 3 (participation and conformance-filter funnel).

#![forbid(unsafe_code)]

fn main() {
    pq_obs::init_from_env();
    let e = pq_bench::run_experiment_from_env("table3");
    pq_bench::report::print_table3(&e);
    pq_obs::flush_to_env();
}
