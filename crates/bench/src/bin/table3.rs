//! Regenerates Table 3 (participation and conformance-filter funnel).

fn main() {
    let e = pq_bench::run_experiment_from_env("table3");
    pq_bench::report::print_table3(&e);
}
