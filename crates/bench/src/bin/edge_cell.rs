//! One edge grid cell for CI: a single site on a single network,
//! loaded over the edge stacks plus their Table-1 A/B partners, run
//! through both studies. Prints the study digest so the workflow can
//! diff a `PQ_JOBS=4` execution against `PQ_JOBS=1` and prove the
//! edge pipeline keeps the parallel-determinism contract.
//!
//! `PQ_SEED` selects the seed (default 1910); `PQ_FAULTS` works as
//! everywhere else, so the chaos job can run the same cell faulted.

#![forbid(unsafe_code)]

use pq_bench::manifest::study_digest;
use pq_sim::NetworkKind;
use pq_study::{run_study_with, StimulusSet};
use pq_transport::Protocol;

fn main() {
    pq_obs::init_from_env();
    let seed = pq_bench::seed_from_env();
    let jobs = pq_par::jobs();
    let faulted = pq_fault::init_from_env();
    let mut stacks = vec![Protocol::Quic, Protocol::TcpPlus];
    stacks.extend(Protocol::EDGE);
    stacks.sort();
    let sites = vec![pq_web::site("wikipedia.org").expect("corpus site")];
    let networks = [NetworkKind::Lte];
    let runs = 3;
    eprintln!(
        "[edge-cell] 1 site × 1 network × {} stacks × {runs} runs, seed={seed}, jobs={jobs}{}",
        stacks.len(),
        if faulted { ", faults=ON" } else { "" },
    );
    let stimuli = StimulusSet::build(&sites, &networks, &stacks, runs, seed);
    let pairs = Protocol::pairs_for(&stacks);
    let data = run_study_with(&stimuli, &pairs, &stacks, seed);
    println!("study_digest={:016x}", study_digest(&data));
    pq_obs::flush_to_env();
}
