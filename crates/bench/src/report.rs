//! Report printers: each function regenerates one table/figure of the
//! paper as a terminal table (and is reused by the `runall` binary).

use crate::{share_bar, Experiment};
use pq_metrics::Metric;
use pq_sim::{Link, LinkConfig, NetworkKind, Packet, PushOutcome, SimRng, SimTime};
use pq_study::{
    ab_shares, anova_across_protocols, fig3_agreement, metric_correlation, per_site_differences,
    Environment, Group, StudyKind,
};
use pq_transport::Protocol;

/// Table 1: the protocol configurations under test.
pub fn print_table1() {
    println!("== Table 1: protocol configurations ==");
    println!(
        "{:<10} {:<9} {:<4} {:<7} {:<14} {:<12} SACK blocks/ACK",
        "Protocol", "CC", "IW", "Pacing", "TunedBuffers", "IdleRestart"
    );
    let net = NetworkKind::Dsl.config();
    for p in Protocol::ALL_WITH_EDGE {
        let c = p.config(&net);
        println!(
            "{:<10} {:<9} {:<4} {:<7} {:<14} {:<12} {}",
            p.label(),
            c.cc.name(),
            c.initial_window_segments,
            if c.pacing { "yes" } else { "no" },
            if c.recv_buffer_bytes > 128 * 1024 {
                "2xBDP"
            } else {
                "stock"
            },
            if c.slow_start_after_idle {
                "IW-reset"
            } else {
                "keep"
            },
            c.max_sack_blocks,
        );
    }
    println!();
}

/// Table 2: network configurations, validated against the emulation
/// (measured rate, base RTT and loss on the actual link model).
pub fn print_table2() {
    println!("== Table 2: network configurations (spec | measured) ==");
    println!(
        "{:<7} {:>9} {:>10} {:>9} {:>7} | {:>11} {:>9} {:>8}",
        "Network",
        "Up[Mbps]",
        "Down[Mbps]",
        "RTT[ms]",
        "Loss",
        "meas.Down",
        "meas.RTT",
        "meas.Loss"
    );
    for kind in NetworkKind::ALL {
        let cfg = kind.config();
        let (down_mbps, rtt_ms, loss) = measure_network(&cfg.downlink(), &cfg.uplink());
        println!(
            "{:<7} {:>9.3} {:>10.3} {:>9} {:>6.1}% | {:>11.3} {:>9.1} {:>7.1}%",
            kind.name(),
            cfg.up_bps as f64 / 1e6,
            cfg.down_bps as f64 / 1e6,
            cfg.min_rtt.as_millis_f64(),
            cfg.loss * 100.0,
            down_mbps,
            rtt_ms,
            loss * 100.0,
        );
    }
    println!("(queue budget: 200 ms at line rate, DSL 12 ms; loss per direction)");
    println!();
}

/// Saturate the downlink to measure rate and loss; ping once for RTT.
fn measure_network(down: &LinkConfig, up: &LinkConfig) -> (f64, f64, f64) {
    let mut link: Link<u32> = Link::new(down.clone(), SimRng::new(2));
    let mut now = SimTime::ZERO;
    let mut next = match link.push(now, Packet::new(pq_sim::ConnId(0), 1500, 0)) {
        PushOutcome::StartedTx(t) => t,
        _ => unreachable!(),
    };
    let horizon = SimTime::from_secs(30);
    let mut delivered_bytes = 0u64;
    let mut first_arrival = None;
    while next <= horizon {
        now = next;
        while link.queued_bytes() < 6000 {
            link.push(now, Packet::new(pq_sim::ConnId(0), 1500, 0));
        }
        let txd = link.on_tx_done(now);
        if let Some((at, p)) = txd.delivery {
            delivered_bytes += u64::from(p.size);
            first_arrival.get_or_insert(at);
        }
        next = txd.next_tx_done.expect("kept busy");
    }
    let secs = now.as_secs_f64();
    let mbps = delivered_bytes as f64 * 8.0 / secs / 1e6;
    let stats = link.stats();
    let loss = stats.lost as f64 / (stats.lost + stats.delivered) as f64;
    // RTT: one-way delays of both directions plus two serializations
    // of a tiny probe.
    let rtt =
        up.prop_delay + down.prop_delay + up.serialization_delay(60) + down.serialization_delay(60);
    (mbps, rtt.as_millis_f64(), loss)
}

/// Table 3: participation and the conformance-filter funnel.
pub fn print_table3(e: &Experiment) {
    println!("== Table 3: participation after each filter rule ==");
    println!(
        "{:<9} {:<7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "Group", "Study", "-", "R1", "R2", "R3", "R4", "R5", "R6", "R7"
    );
    let paper_ab = [
        [35; 8],
        [487, 471, 441, 355, 268, 268, 239, 233],
        [218, 217, 210, 196, 171, 170, 159, 155],
    ];
    let paper_rate = [
        [35; 8],
        [1563, 1494, 1321, 1034, 733, 723, 661, 614],
        [209, 204, 194, 172, 152, 151, 140, 138],
    ];
    for (gi, group) in Group::ALL.into_iter().enumerate() {
        for (study, funnel, paper) in [
            ("A/B", &e.data.funnel_ab[gi], &paper_ab[gi]),
            ("Rating", &e.data.funnel_rating[gi], &paper_rate[gi]),
        ] {
            print!("{:<9} {:<7} {:>6}", group.name(), study, funnel.recruited);
            for a in funnel.after {
                print!(" {a:>6}");
            }
            println!();
            print!("{:<9} {:<7}", "  paper:", "");
            for p in paper {
                print!(" {p:>6}");
            }
            println!();
        }
    }
    println!();
}

/// Figure 3: rating-study agreement between groups per condition.
pub fn print_fig3(e: &Experiment) {
    println!("== Figure 3: rating agreement across subject groups ==");
    let rows = fig3_agreement(&e.data.ratings, 0.99);
    if rows.is_empty() {
        println!("(no shared conditions — increase the scale)");
        return;
    }
    let agree = rows.iter().filter(|r| r.micro_agrees()).count();
    println!(
        "conditions: {}   µWorker means inside lab 99% CI: {}/{} ({:.0}%)",
        rows.len(),
        agree,
        rows.len(),
        100.0 * agree as f64 / rows.len() as f64
    );
    let dev: Vec<f64> = rows.iter().filter_map(|r| r.internet_deviation()).collect();
    let micro_dev: Vec<f64> = rows
        .iter()
        .map(|r| (r.micro.mean - r.lab.mean).abs())
        .collect();
    if !dev.is_empty() {
        println!(
            "mean |deviation from lab mean|: µWorker {:.1}, Internet(median) {:.1}  → the Internet group deviates most and is excluded (as in §4.2)",
            pq_stats::mean(&micro_dev),
            pq_stats::mean(&dev),
        );
    }
    println!(
        "{:<26} {:>9} {:>16} {:>9} {:>9}",
        "condition (site/net/proto)", "lab mean", "lab 99% CI", "µWorker", "Internet"
    );
    let step = (rows.len() / 12).max(1);
    for r in rows.iter().step_by(step) {
        println!(
            "{:<26} {:>9.1} [{:>6.1},{:>6.1}] {:>9.1} {:>9}",
            format!(
                "{}/{}/{}",
                e.stimuli.site_names[r.site as usize]
                    .trim_end_matches(".com")
                    .trim_end_matches(".org"),
                r.network.name(),
                r.protocol.label()
            ),
            r.lab.mean,
            r.lab.lo(),
            r.lab.hi(),
            r.micro.mean,
            r.internet_median
                .map(|m| format!("{m:.1}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!();
}

/// Figure 4: A/B vote shares per protocol pair and network.
pub fn print_fig4(e: &Experiment) {
    println!("== Figure 4: A/B study vote shares (valid lab+µWorker votes) ==");
    let groups = [Group::Lab, Group::MicroWorker];
    for network in NetworkKind::ALL {
        println!("--- {} ---", network.name());
        for pair in Protocol::pairs_for(&e.stacks) {
            if let Some(s) = ab_shares(&e.data.ab, network, pair, &groups) {
                println!(
                    "{:>9} vs {:<9} {}|{}|{}  {:>4.0}% / {:>4.0}% / {:>4.0}%  (n={}, avg replays {:.2})",
                    pair.0.label(),
                    pair.1.label(),
                    share_bar(s.first, 10),
                    share_bar(s.no_diff, 10),
                    share_bar(s.second, 10),
                    s.first * 100.0,
                    s.no_diff * 100.0,
                    s.second * 100.0,
                    s.n,
                    s.avg_replays,
                );
            }
        }
    }
    println!("(bars: prefer-first | no difference | prefer-second)");
    println!();
}

/// Figure 5: rating means + 99 % CI per protocol × setting, plus the
/// §4.4 ANOVA significance screening.
pub fn print_fig5(e: &Experiment) {
    println!("== Figure 5: rating study mean votes (µWorker, 99% CI) ==");
    let cells: [(Environment, Option<NetworkKind>); 6] = [
        (Environment::Work, Some(NetworkKind::Dsl)),
        (Environment::Work, Some(NetworkKind::Lte)),
        (Environment::FreeTime, Some(NetworkKind::Dsl)),
        (Environment::FreeTime, Some(NetworkKind::Lte)),
        (Environment::Plane, Some(NetworkKind::Da2gc)),
        (Environment::Plane, Some(NetworkKind::Mss)),
    ];
    print!("{:<22}", "setting");
    for p in &e.stacks {
        print!(" {:>16}", p.label());
    }
    println!();
    for (env, net) in cells {
        print!(
            "{:<22}",
            format!("{} / {}", env.name(), net.unwrap().name())
        );
        for &p in &e.stacks {
            match pq_study::rating_interval(&e.data.ratings, env, net, p, Group::MicroWorker, 0.99)
            {
                Some(ci) => print!(" {:>8.1} ±{:>5.1} ", ci.mean, ci.half_width),
                None => print!(" {:>16}", "-"),
            }
        }
        println!();
    }

    println!("\nANOVA across the protocol grid per setting:");
    for (env, net) in cells {
        if let Some(r) =
            anova_across_protocols(&e.data.ratings, env, net, &e.stacks, Group::MicroWorker)
        {
            println!(
                "  {:<22} F={:<6.2} p={:<8.4} significant: 99% {} / 90% {}",
                format!("{} / {}", env.name(), net.unwrap().name()),
                r.f,
                r.p,
                if r.significant_at(0.99) { "YES" } else { "no" },
                if r.significant_at(0.90) { "YES" } else { "no" },
            );
        }
    }

    println!("\n§4.4 'Where it makes a difference' (per-site pairwise, 90% level):");
    let mut pairs: Vec<(Protocol, Protocol)> = vec![
        (Protocol::Quic, Protocol::Tcp),
        (Protocol::Quic, Protocol::TcpPlus),
        (Protocol::QuicBbr, Protocol::TcpPlusBbr),
        (Protocol::TcpPlus, Protocol::Tcp),
    ];
    pairs.extend(
        Protocol::EDGE_AB_PAIRS
            .into_iter()
            .filter(|(a, b)| e.stacks.contains(a) && e.stacks.contains(b)),
    );
    for network in NetworkKind::ALL {
        let diffs = per_site_differences(
            &e.data.ratings,
            network,
            &pairs,
            Group::MicroWorker,
            0.90,
            e.stimuli.site_count(),
        );
        println!(
            "  {}: {} significant site×pair differences",
            network.name(),
            diffs.len()
        );
        for d in diffs.iter().take(6) {
            println!(
                "     {:<18} {} > {} by {:.1} points (p={:.3})",
                e.stimuli.site_names[d.site as usize],
                d.better.label(),
                d.worse.label(),
                d.diff,
                d.p
            );
        }
    }
    println!();
}

/// Figure 6: Pearson correlation heatmap (metric ↔ mean votes).
pub fn print_fig6(e: &Experiment) {
    println!("== Figure 6: Pearson r, technical metric vs mean vote (µWorker) ==");
    println!("(DSL/LTE use free-time votes, as in the paper)");
    for &protocol in &e.stacks {
        println!("--- {} ---", protocol.label());
        print!("{:<6}", "");
        for n in NetworkKind::ALL {
            print!(" {:>7}", n.name());
        }
        println!();
        for metric in Metric::ALL {
            print!("{:<6}", metric.name());
            for network in NetworkKind::ALL {
                let envs: &[Environment] = if network.is_inflight() {
                    &[Environment::Plane]
                } else {
                    &[Environment::FreeTime]
                };
                let r = metric_correlation(
                    &e.data.ratings,
                    &e.stimuli,
                    network,
                    protocol,
                    metric,
                    Group::MicroWorker,
                    envs,
                );
                match r {
                    Some(r) => print!(" {r:>7.2}"),
                    None => print!(" {:>7}", "-"),
                }
            }
            println!();
        }
    }
    println!("(−1.0 = metric explains votes perfectly; SI should win, PLT should trail)");
    println!();
}

/// §4.2: answer-time, replay and demographic statistics per group.
pub fn print_agreement(e: &Experiment) {
    println!("== §4.2: study agreement statistics ==");
    println!(
        "{:<9} {:>16} {:>19}",
        "Group", "A/B s/video", "Rating s/video"
    );
    let paper = [(17.69, 21.44), (14.46, 17.71), (15.59, 19.23)];
    for group in Group::ALL {
        let ab: Vec<f64> = e
            .data
            .sessions_ab
            .iter()
            .filter(|s| s.participant.group == group && s.valid())
            .map(|s| s.secs_per_video)
            .collect();
        let rate: Vec<f64> = e
            .data
            .sessions_rating
            .iter()
            .filter(|s| s.participant.group == group && s.valid())
            .map(|s| s.secs_per_video)
            .collect();
        println!(
            "{:<9} {:>7.2} (p:{:>5.2}) {:>8.2} (p:{:>6.2})",
            group.name(),
            pq_stats::mean(&ab),
            paper[group.idx()].0,
            pq_stats::mean(&rate),
            paper[group.idx()].1,
        );
    }

    println!("\nreplays per A/B video (valid votes):");
    for group in Group::ALL {
        let mut by_net = Vec::new();
        for network in NetworkKind::ALL {
            let votes: Vec<f64> = e
                .data
                .ab
                .iter()
                .filter(|v| v.valid && v.group == group && v.network == network)
                .map(|v| f64::from(v.replays))
                .collect();
            by_net.push(format!("{} {:.2}", network.name(), pq_stats::mean(&votes)));
        }
        println!("  {:<9} {}", group.name(), by_net.join("  "));
    }

    println!("\nA/B confidence (decided vs no-difference votes):");
    for network in NetworkKind::ALL {
        if let Some(cs) = pq_study::confidence_stats(&e.data.ab, network) {
            println!(
                "  {:<7} decided {:.2}  no-diff {:.2}  (n={})",
                network.name(),
                cs.decided,
                cs.undecided,
                cs.n
            );
        }
    }

    println!("\ndemographics (A/B study, all recruited):");
    for group in Group::ALL {
        let ps: Vec<_> = e
            .data
            .sessions_ab
            .iter()
            .filter(|s| s.participant.group == group)
            .collect();
        let male = ps.iter().filter(|s| s.participant.male).count() as f64 / ps.len() as f64;
        let young = ps
            .iter()
            .filter(|s| s.participant.age == pq_study::AgeBracket::Under24)
            .count() as f64
            / ps.len() as f64;
        let mid = ps
            .iter()
            .filter(|s| s.participant.age == pq_study::AgeBracket::From25To44)
            .count() as f64
            / ps.len() as f64;
        println!(
            "  {:<9} male {:.0}%  <24 {:.0}%  25-44 {:.0}%",
            group.name(),
            male * 100.0,
            young * 100.0,
            mid * 100.0
        );
    }
    println!();
}

/// Extra ablations: what the conformance filter buys, and what each
/// TCP+ tuning knob contributes (design-choice ablations from
/// DESIGN.md).
pub fn print_ablation(e: &Experiment) {
    println!("== Ablation 1: conformance filtering (Fig. 4 cell, MSS, QUIC vs TCP) ==");
    let pair = (Protocol::Quic, Protocol::Tcp);
    let groups = [Group::MicroWorker];
    if let Some(filtered) = ab_shares(&e.data.ab, NetworkKind::Mss, pair, &groups) {
        // Recompute without the validity filter.
        let all: Vec<_> = e
            .data
            .ab
            .iter()
            .filter(|v| {
                v.network == NetworkKind::Mss && v.pair == pair && v.group == Group::MicroWorker
            })
            .collect();
        let n = all.len() as f64;
        let first = all
            .iter()
            .filter(|v| v.choice == pq_study::AbChoice::First)
            .count() as f64
            / n;
        println!(
            "  QUIC-preferred share: filtered {:.0}% (n={}) vs unfiltered {:.0}% (n={})",
            filtered.first * 100.0,
            filtered.n,
            first * 100.0,
            all.len()
        );
        println!("  → cheating µWorkers dilute the signal; R1-R7 recover it.");
    }

    println!("\n== Ablation 2: session counts per study kind ==");
    for (kind, sessions) in [
        (StudyKind::AB, &e.data.sessions_ab),
        (StudyKind::Rating, &e.data.sessions_rating),
    ] {
        let valid = sessions.iter().filter(|s| s.valid()).count();
        println!(
            "  {:?}: {} recruited, {} valid",
            kind,
            sessions.len(),
            valid
        );
    }

    println!("\n== Ablation 3: 0-RTT repeat visits (median FVC, wikipedia, ms) ==");
    let site = pq_web::site("wikipedia.org").expect("corpus");
    let med = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v[v.len() / 2]
    };
    println!(
        "  {:<8} {:>11} {:>11} {:>11} {:>11}",
        "network", "TCP+ fresh", "TCP+ 0RTT", "QUIC fresh", "QUIC 0RTT"
    );
    for kind in [NetworkKind::Dsl, NetworkKind::Lte] {
        let net = kind.config();
        let fvc = |proto: Protocol, zr: bool| {
            let cfg = if zr {
                proto.config_zero_rtt(&net)
            } else {
                proto.config(&net)
            };
            med((0..5)
                .map(|s| {
                    pq_web::load_page_with_config(&site, &net, &cfg, 600 + s, &Default::default())
                        .metrics
                        .fvc_ms
                })
                .collect())
        };
        println!(
            "  {:<8} {:>11.0} {:>11.0} {:>11.0} {:>11.0}",
            kind.name(),
            fvc(Protocol::TcpPlus, false),
            fvc(Protocol::TcpPlus, true),
            fvc(Protocol::Quic, false),
            fvc(Protocol::Quic, true),
        );
    }
    println!("  (the repeat-visit scenario §3 discusses: both stacks gain ≈1 RTT)");

    println!("\n== Ablation 4: client-side processing scale (QUIC DSL SI, ms) ==");
    let net = NetworkKind::Dsl.config();
    print!(" ");
    for scale in [0.0, 0.5, 1.0, 2.0] {
        let opts = pq_web::LoadOptions {
            processing_scale: scale,
            ..Default::default()
        };
        let si = med((0..5)
            .map(|s| {
                pq_web::load_page(&site, &net, Protocol::Quic, 700 + s, &opts)
                    .metrics
                    .si_ms
            })
            .collect());
        print!(" scale {scale}: {si:>6.0}");
    }
    println!("\n  (0 = network-only loads; 1 = calibrated browser costs)");
    println!();
}
