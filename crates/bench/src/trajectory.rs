//! The bench trajectory: an append-only perf history plus the
//! baseline diff that gates regressions.
//!
//! Every `runall` appends one schema-versioned JSON line to
//! `results/BENCH_history.jsonl` ([`history_entry`] /
//! [`append_history`]) — seed, jobs, scale and git revision stamped,
//! so the events/sec trajectory across commits can be plotted or
//! `jq`-ed without archaeology. The `pq-bench-diff` binary feeds two
//! `BENCH_obs.json` documents to [`diff_bench`] and exits nonzero when
//! throughput regressed beyond tolerance — CI runs it as a soft-fail
//! report until the trajectory stabilises.

use crate::manifest::Manifest;
use pq_obs::json::Value;

/// Version stamp written into every history line; bump when the entry
/// shape changes so readers can dispatch.
pub const HISTORY_SCHEMA: u64 = 1;

/// Phases shorter than this in the baseline are skipped by the diff:
/// their relative wall-time is noise.
const MIN_PHASE_SECS: f64 = 0.05;

/// Build one `BENCH_history.jsonl` entry from the run's manifest and
/// its `BENCH_obs.json` document.
pub fn history_entry(m: &Manifest, bench: &Value) -> Value {
    let mut phases = Value::obj();
    for (name, secs) in &m.phase_secs {
        phases.set(name, Value::Num(*secs));
    }
    Value::obj()
        .with("schema", HISTORY_SCHEMA)
        .with("created_unix", m.created_unix)
        .with("git_rev", m.git_rev.as_str())
        .with("scale", m.scale.as_str())
        .with("seed", m.seed)
        .with("jobs", m.jobs)
        .with("study_digest", m.study_digest.as_str())
        .with(
            "total_secs",
            bench
                .get("total_secs")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
        )
        .with(
            "events_per_sec",
            bench
                .get("events_per_sec")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
        )
        .with("sim_events", m.sim_events)
        .with("pageloads", m.pageloads)
        .with("phases", phases)
}

/// Append `entry` as one compact line to the JSONL file at `path`,
/// creating parent directories and the file itself as needed. Goes
/// through pq-ckpt's `durable_append` (O_APPEND + fdatasync) so a
/// crash right after `runall` finishes can't lose or tear the line.
pub fn append_history(path: &str, entry: &Value) -> std::io::Result<()> {
    // `Value`'s Display is the compact one-line form — exactly one
    // history entry per line.
    pq_ckpt::durable_append(path, &entry.to_string())
}

/// One compared quantity in a [`DiffReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct DiffLine {
    /// What was compared (`events_per_sec`, `total_secs`, `phase:X`).
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// `current / baseline` (NaN when the baseline is 0).
    pub ratio: f64,
    /// Whether this quantity regressed beyond tolerance.
    pub regressed: bool,
}

/// The outcome of diffing a current `BENCH_obs.json` against a
/// baseline one.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffReport {
    /// Relative tolerance the comparison ran with.
    pub tolerance: f64,
    /// Per-quantity comparison lines, throughput first.
    pub lines: Vec<DiffLine>,
}

impl DiffReport {
    /// Did any quantity regress beyond tolerance?
    pub fn regressed(&self) -> bool {
        self.lines.iter().any(|l| l.regressed)
    }

    /// Human-readable table of the comparison.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>14} {:>14} {:>8}  verdict",
            "quantity", "baseline", "current", "ratio"
        );
        for l in &self.lines {
            let verdict = if l.regressed {
                "REGRESSED"
            } else if l.ratio.is_nan() {
                "n/a"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "{:<24} {:>14.3} {:>14.3} {:>8.3}  {verdict}",
                l.name, l.baseline, l.current, l.ratio
            );
        }
        let _ = writeln!(
            out,
            "tolerance ±{:.0}% → {}",
            self.tolerance * 100.0,
            if self.regressed() {
                "REGRESSION DETECTED"
            } else {
                "within tolerance"
            }
        );
        out
    }
}

fn num(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

/// Compare a current `BENCH_obs.json` document against a baseline one
/// with relative `tolerance` (e.g. `0.25` = 25 %).
///
/// Regression gates:
/// * `events_per_sec` — current below `baseline × (1 − tolerance)`;
/// * `total_secs` and each phase with a baseline ≥ 0.05 s — current
///   above `baseline × (1 + tolerance)`.
///
/// Scale or seed mismatches are an error (the numbers would not be
/// comparable), as is a malformed document.
pub fn diff_bench(baseline: &Value, current: &Value, tolerance: f64) -> Result<DiffReport, String> {
    if !tolerance.is_finite() || tolerance < 0.0 {
        return Err(format!(
            "tolerance must be a non-negative number, got {tolerance}"
        ));
    }
    for key in ["scale", "seed"] {
        let b = baseline.get(key).map(|v| v.to_string());
        let c = current.get(key).map(|v| v.to_string());
        if b != c {
            return Err(format!(
                "{key} mismatch: baseline {} vs current {} — runs are not comparable",
                b.unwrap_or_else(|| "<missing>".into()),
                c.unwrap_or_else(|| "<missing>".into()),
            ));
        }
    }
    let mut lines = Vec::new();
    let ratio = |b: f64, c: f64| if b > 0.0 { c / b } else { f64::NAN };

    let b_eps = num(baseline, "events_per_sec")?;
    let c_eps = num(current, "events_per_sec")?;
    lines.push(DiffLine {
        name: "events_per_sec".into(),
        baseline: b_eps,
        current: c_eps,
        ratio: ratio(b_eps, c_eps),
        regressed: b_eps > 0.0 && c_eps < b_eps * (1.0 - tolerance),
    });

    let b_total = num(baseline, "total_secs")?;
    let c_total = num(current, "total_secs")?;
    lines.push(DiffLine {
        name: "total_secs".into(),
        baseline: b_total,
        current: c_total,
        ratio: ratio(b_total, c_total),
        regressed: b_total >= MIN_PHASE_SECS && c_total > b_total * (1.0 + tolerance),
    });

    let b_phases = baseline
        .get("phases")
        .ok_or_else(|| "baseline missing \"phases\"".to_string())?;
    let c_phases = current
        .get("phases")
        .ok_or_else(|| "current missing \"phases\"".to_string())?;
    if let Value::Obj(entries) = b_phases {
        for (name, bval) in entries {
            let Some(b) = bval.as_f64() else { continue };
            let Some(c) = c_phases.get(name).and_then(Value::as_f64) else {
                continue; // phase added/removed across revisions: skip
            };
            lines.push(DiffLine {
                name: format!("phase:{name}"),
                baseline: b,
                current: c,
                ratio: ratio(b, c),
                regressed: b >= MIN_PHASE_SECS && c > b * (1.0 + tolerance),
            });
        }
    }
    Ok(DiffReport { tolerance, lines })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(eps: f64, total: f64, experiment: f64) -> Value {
        Value::obj()
            .with("scale", "smoke")
            .with("seed", 1910u64)
            .with("events_per_sec", eps)
            .with("total_secs", total)
            .with(
                "phases",
                Value::obj()
                    .with("experiment", experiment)
                    .with("table1", 0.001),
            )
    }

    #[test]
    fn throughput_regression_detected() {
        let base = bench(2_000_000.0, 1.0, 0.9);
        let cur = bench(1_000_000.0, 1.0, 0.9); // -50% < -25% tolerance
        let report = diff_bench(&base, &cur, 0.25).expect("diff");
        assert!(report.regressed());
        let line = &report.lines[0];
        assert_eq!(line.name, "events_per_sec");
        assert!(line.regressed);
        assert!(report.render().contains("REGRESSION DETECTED"));
    }

    #[test]
    fn within_tolerance_passes() {
        let base = bench(2_000_000.0, 1.0, 0.9);
        let cur = bench(1_800_000.0, 1.1, 1.0); // -10% / +10% at 25% tol
        let report = diff_bench(&base, &cur, 0.25).expect("diff");
        assert!(!report.regressed());
        assert!(report.render().contains("within tolerance"));
    }

    #[test]
    fn tolerance_boundary_is_exclusive() {
        // Exactly at the boundary (current = base × (1 − tol)) passes;
        // a hair beyond fails.
        let base = bench(1_000_000.0, 1.0, 0.9);
        let at = bench(750_000.0, 1.0, 0.9);
        assert!(!diff_bench(&base, &at, 0.25).unwrap().regressed());
        let beyond = bench(749_000.0, 1.0, 0.9);
        assert!(diff_bench(&base, &beyond, 0.25).unwrap().regressed());
    }

    #[test]
    fn slow_phase_regression_detected_but_noise_phases_skipped() {
        let base = bench(2_000_000.0, 1.0, 0.9);
        // experiment doubled → regression; table1 (1ms baseline) is
        // below the phase floor, so even a huge ratio is ignored.
        let mut cur = bench(2_000_000.0, 1.0, 1.8);
        cur.set(
            "phases",
            Value::obj().with("experiment", 1.8).with("table1", 0.05),
        );
        let report = diff_bench(&base, &cur, 0.25).expect("diff");
        let exp = report
            .lines
            .iter()
            .find(|l| l.name == "phase:experiment")
            .unwrap();
        assert!(exp.regressed);
        let t1 = report
            .lines
            .iter()
            .find(|l| l.name == "phase:table1")
            .unwrap();
        assert!(!t1.regressed, "sub-50ms baseline phases never gate");
    }

    #[test]
    fn mismatched_runs_and_malformed_docs_error() {
        let base = bench(1.0, 1.0, 0.9);
        let mut other_scale = bench(1.0, 1.0, 0.9);
        other_scale.set("scale", "full");
        assert!(diff_bench(&base, &other_scale, 0.25).is_err());
        let empty = Value::obj().with("scale", "smoke").with("seed", 1910u64);
        assert!(diff_bench(&base, &empty, 0.25).is_err());
        assert!(diff_bench(&base, &base, f64::NAN).is_err());
    }

    #[test]
    fn history_entry_is_schema_stamped_one_liner() {
        let m = crate::manifest::Manifest {
            scale: "smoke".into(),
            seed: 1910,
            jobs: 4,
            study_digest: "00c0ffee00c0ffee".into(),
            git_rev: "abc1234".into(),
            created_unix: 1_765_000_000,
            phase_secs: vec![("experiment".into(), 0.7)],
            funnel_ab: vec![],
            funnel_rating: vec![],
            plt_ms: vec![],
            sim_events: 2_000_000,
            pageloads: 300,
            fault_spec: String::new(),
            faults_injected: 0,
            runs_retried: 0,
            cells_quarantined: vec![],
            resumable: false,
            resumed_from_cells: 0,
            journal_records: 0,
            cells_timed_out: 0,
            lint_baseline_count: 0,
            alloc: None,
            edge: None,
        };
        let entry = history_entry(&m, &bench(2_800_000.0, 0.775, 0.7));
        assert_eq!(
            entry.get("schema").and_then(Value::as_u64),
            Some(HISTORY_SCHEMA)
        );
        assert_eq!(
            entry.get("git_rev").and_then(Value::as_str),
            Some("abc1234")
        );
        let line = entry.to_string();
        assert!(!line.contains('\n'), "compact single-line form");

        let dir = std::env::temp_dir().join("pq_bench_history_test");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("BENCH_history.jsonl");
        let path_str = path.to_str().unwrap();
        append_history(path_str, &entry).expect("append 1");
        append_history(path_str, &entry).expect("append 2");
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one line per run");
        for l in lines {
            let v = Value::parse(l).expect("each line parses");
            assert_eq!(
                v.get("schema").and_then(Value::as_u64),
                Some(HISTORY_SCHEMA)
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
