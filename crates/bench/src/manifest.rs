//! The machine-readable run manifest written by `runall`.
//!
//! One `results/manifest.json` per experiment execution: scale, seed,
//! git revision, per-phase wall-times, the Table-3 funnels, the
//! per-protocol PLT histogram summaries (p50/p90/p99, fed by the
//! instrumented browser layer) and the event-queue throughput — the
//! regression baseline every future perf PR diffs against.

use crate::Experiment;
use pq_obs::json::Value;
use pq_obs::{MetricSnapshot, PhaseTimer};
use pq_study::{Group, StudyData};

/// Accumulating FNV-1a/64 hasher for the study digest.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x1_0000_0000_01b3);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }
}

/// A 64-bit FNV-1a digest over *every bit that analysis consumes* of a
/// study execution: all A/B votes, all rating votes (float bits
/// included) and both funnel tables, in canonical order.
///
/// This is the parallel-determinism witness: `PQ_JOBS=1` and
/// `PQ_JOBS=N` runs of the same scale/seed must produce the same
/// digest, and CI diffs the two manifests to prove it. Any divergence
/// means an RNG stream got keyed by execution order instead of cell
/// coordinates.
pub fn study_digest(data: &StudyData) -> u64 {
    let mut h = Fnv::new();
    h.u64(data.ab.len() as u64);
    for v in &data.ab {
        h.str(v.group.name());
        h.u64(u64::from(v.participant));
        h.u64(u64::from(v.site));
        h.str(v.network.name());
        h.str(v.pair.0.label());
        h.str(v.pair.1.label());
        h.byte(match v.choice {
            pq_study::AbChoice::First => 0,
            pq_study::AbChoice::NoDifference => 1,
            pq_study::AbChoice::Second => 2,
        });
        h.f64(v.confidence);
        h.u64(u64::from(v.replays));
        h.byte(u8::from(v.valid));
    }
    h.u64(data.ratings.len() as u64);
    for v in &data.ratings {
        h.str(v.group.name());
        h.u64(u64::from(v.participant));
        h.u64(u64::from(v.site));
        h.str(v.network.name());
        h.str(v.protocol.label());
        h.byte(v.environment.idx() as u8);
        h.f64(v.speed);
        h.f64(v.quality);
        h.byte(u8::from(v.valid));
    }
    for funnel in data.funnel_ab.iter().chain(&data.funnel_rating) {
        h.u64(u64::from(funnel.recruited));
        for &n in &funnel.after {
            h.u64(u64::from(n));
        }
    }
    h.0
}

/// Survivor counts of one group×study conformance funnel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunnelCounts {
    /// Subject group name (`lab` / `microworker` / `internet`).
    pub group: String,
    /// Participants recruited.
    pub recruited: u32,
    /// Survivors after rules R1..=R7.
    pub after: [u32; 7],
}

/// Per-protocol PLT histogram summary (milliseconds).
#[derive(Clone, Debug, PartialEq)]
pub struct PltSummary {
    /// Protocol label (Table 1 row).
    pub protocol: String,
    /// Page loads observed.
    pub count: u64,
    /// ~median PLT.
    pub p50: f64,
    /// ~90th percentile.
    pub p90: f64,
    /// ~99th percentile.
    pub p99: f64,
}

/// One grid cell that fault injection quarantined (manifest mirror of
/// `pq_study::QuarantinedCell`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// Site name.
    pub site: String,
    /// Network display name.
    pub network: String,
    /// Protocol label.
    pub protocol: String,
    /// Last failure class observed before giving up.
    pub reason: String,
    /// Page loads attempted.
    pub attempts: u32,
}

/// Heap traffic attributed to one harness phase (from the `pq-prof`
/// counting allocator).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllocPhase {
    /// Phase name (matches an entry of `phase_secs`, or `(untimed)`).
    pub phase: String,
    /// Allocations made while the phase was current.
    pub allocs: u64,
    /// Bytes requested while the phase was current.
    pub bytes: u64,
}

/// The edge-stack block of a run that enabled the `pq-edge` proxy or
/// middlebox stacks (`PQ_STACKS`); absent when the grid was the
/// paper's plain five.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeBlock {
    /// Edge stack labels that were part of the grid.
    pub stacks: Vec<String>,
    /// Proxy per-origin connection-pool size (`PQ_EDGE_POOL`).
    pub pool_size: u64,
    /// Replica origins the proxy balances over (`PQ_EDGE_REPLICAS`).
    pub replicas: u64,
    /// Origin legs the proxy opened (`edge.conns_opened`).
    pub conns_opened: u64,
    /// Dispatches served by an already-open leg (`edge.conns_reused`).
    pub conns_reused: u64,
    /// Idle legs evicted from the pools (`edge.conns_evicted`).
    pub conns_evicted: u64,
    /// Packets the middlebox retransmitted early (`edge.mbx_early_retx`).
    pub mbx_early_retx: u64,
}

/// The allocation report of a run profiled with `PQ_PROF_ALLOC=1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllocReport {
    /// Total allocations counted.
    pub total_allocs: u64,
    /// Total bytes requested.
    pub total_bytes: u64,
    /// High-water mark of live heap bytes (RSS estimate).
    pub peak_bytes: u64,
    /// Per-phase attribution.
    pub phases: Vec<AllocPhase>,
}

/// Everything a `runall` execution leaves behind for machines.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Experiment scale label (`smoke` / `reduced` / `full`).
    pub scale: String,
    /// Study seed.
    pub seed: u64,
    /// `pq-par` worker count the run executed with (the `PQ_JOBS`
    /// knob) — lets the perf trajectory distinguish serial from
    /// parallel baselines.
    pub jobs: u64,
    /// Hex FNV-1a/64 digest over the full study dataset (all votes +
    /// funnels, see [`study_digest`]); identical across worker counts
    /// by the pq-par determinism contract.
    pub study_digest: String,
    /// `git rev-parse --short HEAD`, or `unknown` outside a checkout.
    pub git_rev: String,
    /// Unix timestamp (seconds) of manifest creation.
    pub created_unix: u64,
    /// `(phase name, wall seconds)` in execution order.
    pub phase_secs: Vec<(String, f64)>,
    /// A/B study funnels, one per group (Table 3 upper half).
    pub funnel_ab: Vec<FunnelCounts>,
    /// Rating study funnels (Table 3 lower half).
    pub funnel_rating: Vec<FunnelCounts>,
    /// PLT summaries per protocol, from the registry histograms.
    pub plt_ms: Vec<PltSummary>,
    /// Total discrete events processed by all event queues.
    pub sim_events: u64,
    /// Total page loads simulated.
    pub pageloads: u64,
    /// The `PQ_FAULTS` spec the run executed under (empty = injection
    /// off; the digest must then match the committed baseline).
    pub fault_spec: String,
    /// Faults the injector actually fired (`fault.injected` counter).
    pub faults_injected: u64,
    /// Invalid page loads discarded and re-run by the ≥31-valid-runs
    /// retry policy.
    pub runs_retried: u64,
    /// Grid cells that exhausted their retry budget and were removed;
    /// the studies and figures ran on the surviving cells.
    pub cells_quarantined: Vec<QuarantineEntry>,
    /// `true` when the run was interrupted (SIGINT/SIGTERM) after
    /// checkpointing its completed cells: the journal survives and a
    /// `PQ_RESUME=1` rerun picks up where this one stopped. Such a
    /// manifest is a progress report, never a comparison baseline.
    pub resumable: bool,
    /// Grid cells restored from the write-ahead journal instead of
    /// rebuilt (0 on a fresh run).
    pub resumed_from_cells: u64,
    /// Total records in the cell journal at collection time (replayed
    /// + written this run; 0 when no journal was open).
    pub journal_records: u64,
    /// Cells quarantined by the `PQ_CELL_TIMEOUT_MS` watchdog.
    pub cells_timed_out: u64,
    /// Total grandfathered findings in the committed `pq-lint.baseline`
    /// at run time. The baseline only shrinks, so re-anchors can watch
    /// the static-analysis debt pay down across recorded runs.
    pub lint_baseline_count: u64,
    /// Allocation attribution from the `pq-prof` counting allocator;
    /// `None` when the run executed without `PQ_PROF_ALLOC=1`.
    pub alloc: Option<AllocReport>,
    /// Edge-stack summary (pool and middlebox activity); `None` when
    /// no edge stack was in the grid, keeping baseline manifests
    /// byte-stable.
    pub edge: Option<EdgeBlock>,
}

impl Manifest {
    /// Assemble the manifest from a finished experiment, the phase
    /// timer, and the global metrics registry.
    pub fn collect(e: &Experiment, timer: &PhaseTimer) -> Manifest {
        let reg = pq_obs::registry();
        let funnel = |funnels: &[pq_study::Funnel; 3]| -> Vec<FunnelCounts> {
            Group::ALL
                .into_iter()
                .zip(funnels)
                .map(|(g, f)| FunnelCounts {
                    group: g.name().to_lowercase().replace(['µ', ' '], ""),
                    recruited: f.recruited,
                    after: f.after,
                })
                .collect()
        };
        let plt_ms = e
            .stacks
            .iter()
            .copied()
            .filter_map(|p| {
                let name = format!("web.plt_ms{{proto=\"{}\"}}", p.label());
                match reg.get(&name) {
                    Some(MetricSnapshot::Histogram {
                        count,
                        p50,
                        p90,
                        p99,
                        ..
                    }) => Some(PltSummary {
                        protocol: p.label().to_string(),
                        count,
                        p50,
                        p90,
                        p99,
                    }),
                    _ => None,
                }
            })
            .collect();
        let counter = |name: &str| match reg.get(name) {
            Some(MetricSnapshot::Counter(v)) => v,
            _ => 0,
        };
        Manifest {
            scale: e.scale.label().to_string(),
            seed: e.seed,
            jobs: pq_par::jobs() as u64,
            study_digest: format!("{:016x}", study_digest(&e.data)),
            git_rev: git_rev(),
            created_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            phase_secs: timer.phases().to_vec(),
            funnel_ab: funnel(&e.data.funnel_ab),
            funnel_rating: funnel(&e.data.funnel_rating),
            plt_ms,
            sim_events: counter("sim.events_processed"),
            pageloads: counter("web.pageloads"),
            fault_spec: pq_fault::plan().map(|p| p.spec.clone()).unwrap_or_default(),
            faults_injected: counter("fault.injected"),
            runs_retried: e.stimuli.runs_retried(),
            cells_quarantined: e
                .stimuli
                .quarantined()
                .iter()
                .map(|q| QuarantineEntry {
                    site: q.site.clone(),
                    network: q.network.clone(),
                    protocol: q.protocol.clone(),
                    reason: q.reason.clone(),
                    attempts: q.attempts,
                })
                .collect(),
            resumable: false,
            resumed_from_cells: e.stimuli.resumed_cells(),
            journal_records: if pq_ckpt::journal_active() {
                pq_ckpt::replayed_count() + pq_ckpt::records_written()
            } else {
                0
            },
            cells_timed_out: e.stimuli.cells_timed_out(),
            lint_baseline_count: pq_lint::Baseline::load(std::path::Path::new("pq-lint.baseline"))
                .map(|b| b.total() as u64)
                .unwrap_or(0),
            alloc: if pq_prof::alloc_enabled() {
                let snap = pq_prof::alloc_snapshot();
                Some(AllocReport {
                    total_allocs: snap.total_allocs,
                    total_bytes: snap.total_bytes,
                    peak_bytes: snap.peak_bytes,
                    phases: snap
                        .phases
                        .iter()
                        .map(|p| AllocPhase {
                            phase: p.phase.clone(),
                            allocs: p.allocs,
                            bytes: p.bytes,
                        })
                        .collect(),
                })
            } else {
                None
            },
            edge: if e.stacks.iter().any(|p| p.is_edge()) {
                let cfg = pq_edge::EdgeConfig::from_env();
                Some(EdgeBlock {
                    stacks: e
                        .stacks
                        .iter()
                        .filter(|p| p.is_edge())
                        .map(|p| p.label().to_string())
                        .collect(),
                    pool_size: u64::from(cfg.pool_size),
                    replicas: u64::from(cfg.replicas),
                    conns_opened: counter("edge.conns_opened"),
                    conns_reused: counter("edge.conns_reused"),
                    conns_evicted: counter("edge.conns_evicted"),
                    mbx_early_retx: counter("edge.mbx_early_retx"),
                })
            } else {
                None
            },
        }
    }

    /// Encode as JSON.
    pub fn to_json(&self) -> Value {
        let alloc_json = |a: &AllocReport| {
            Value::obj()
                .with("total_allocs", a.total_allocs)
                .with("total_bytes", a.total_bytes)
                .with("peak_bytes", a.peak_bytes)
                .with(
                    "phases",
                    a.phases
                        .iter()
                        .map(|p| {
                            Value::obj()
                                .with("phase", p.phase.as_str())
                                .with("allocs", p.allocs)
                                .with("bytes", p.bytes)
                        })
                        .collect::<Vec<_>>(),
                )
        };
        let funnels = |fs: &[FunnelCounts]| -> Vec<Value> {
            fs.iter()
                .map(|f| {
                    Value::obj()
                        .with("group", f.group.as_str())
                        .with("recruited", u64::from(f.recruited))
                        .with(
                            "after",
                            f.after
                                .iter()
                                .map(|&n| Value::from(u64::from(n)))
                                .collect::<Vec<_>>(),
                        )
                })
                .collect()
        };
        let mut out = Value::obj()
            .with("scale", self.scale.as_str())
            .with("seed", self.seed)
            .with("jobs", self.jobs)
            .with("study_digest", self.study_digest.as_str())
            .with("git_rev", self.git_rev.as_str())
            .with("created_unix", self.created_unix)
            .with(
                "phases",
                self.phase_secs
                    .iter()
                    .map(|(name, secs)| {
                        Value::obj().with("name", name.as_str()).with("secs", *secs)
                    })
                    .collect::<Vec<_>>(),
            )
            .with("funnel_ab", funnels(&self.funnel_ab))
            .with("funnel_rating", funnels(&self.funnel_rating))
            .with(
                "plt_ms",
                self.plt_ms
                    .iter()
                    .map(|p| {
                        Value::obj()
                            .with("protocol", p.protocol.as_str())
                            .with("count", p.count)
                            .with("p50", p.p50)
                            .with("p90", p.p90)
                            .with("p99", p.p99)
                    })
                    .collect::<Vec<_>>(),
            )
            .with("sim_events", self.sim_events)
            .with("pageloads", self.pageloads)
            .with("fault_spec", self.fault_spec.as_str())
            .with("faults_injected", self.faults_injected)
            .with("runs_retried", self.runs_retried)
            .with(
                "cells_quarantined",
                self.cells_quarantined
                    .iter()
                    .map(|q| {
                        Value::obj()
                            .with("site", q.site.as_str())
                            .with("network", q.network.as_str())
                            .with("protocol", q.protocol.as_str())
                            .with("reason", q.reason.as_str())
                            .with("attempts", u64::from(q.attempts))
                    })
                    .collect::<Vec<_>>(),
            )
            .with("resumable", self.resumable)
            .with("resumed_from_cells", self.resumed_from_cells)
            .with("journal_records", self.journal_records)
            .with("cells_timed_out", self.cells_timed_out)
            .with("lint_baseline_count", self.lint_baseline_count);
        if let Some(a) = &self.alloc {
            out.set("alloc", alloc_json(a));
        }
        if let Some(e) = &self.edge {
            out.set(
                "edge",
                Value::obj()
                    .with(
                        "stacks",
                        e.stacks
                            .iter()
                            .map(|s| Value::from(s.as_str()))
                            .collect::<Vec<_>>(),
                    )
                    .with("pool_size", e.pool_size)
                    .with("replicas", e.replicas)
                    .with("conns_opened", e.conns_opened)
                    .with("conns_reused", e.conns_reused)
                    .with("conns_evicted", e.conns_evicted)
                    .with("mbx_early_retx", e.mbx_early_retx),
            );
        }
        out
    }

    /// Decode from JSON (inverse of [`Manifest::to_json`]); `None` on
    /// any missing or mistyped field.
    pub fn from_json(v: &Value) -> Option<Manifest> {
        let funnels = |v: &Value| -> Option<Vec<FunnelCounts>> {
            v.as_arr()?
                .iter()
                .map(|f| {
                    let after_v = f.get("after")?.as_arr()?;
                    let mut after = [0u32; 7];
                    if after_v.len() != after.len() {
                        return None;
                    }
                    for (slot, a) in after.iter_mut().zip(after_v) {
                        *slot = a.as_u64()? as u32;
                    }
                    Some(FunnelCounts {
                        group: f.get("group")?.as_str()?.to_string(),
                        recruited: f.get("recruited")?.as_u64()? as u32,
                        after,
                    })
                })
                .collect()
        };
        Some(Manifest {
            scale: v.get("scale")?.as_str()?.to_string(),
            seed: v.get("seed")?.as_u64()?,
            jobs: v.get("jobs")?.as_u64()?,
            study_digest: v.get("study_digest")?.as_str()?.to_string(),
            git_rev: v.get("git_rev")?.as_str()?.to_string(),
            created_unix: v.get("created_unix")?.as_u64()?,
            phase_secs: v
                .get("phases")?
                .as_arr()?
                .iter()
                .map(|p| {
                    Some((
                        p.get("name")?.as_str()?.to_string(),
                        p.get("secs")?.as_f64()?,
                    ))
                })
                .collect::<Option<Vec<_>>>()?,
            funnel_ab: funnels(v.get("funnel_ab")?)?,
            funnel_rating: funnels(v.get("funnel_rating")?)?,
            plt_ms: v
                .get("plt_ms")?
                .as_arr()?
                .iter()
                .map(|p| {
                    Some(PltSummary {
                        protocol: p.get("protocol")?.as_str()?.to_string(),
                        count: p.get("count")?.as_u64()?,
                        p50: p.get("p50")?.as_f64()?,
                        p90: p.get("p90")?.as_f64()?,
                        p99: p.get("p99")?.as_f64()?,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
            sim_events: v.get("sim_events")?.as_u64()?,
            pageloads: v.get("pageloads")?.as_u64()?,
            fault_spec: v.get("fault_spec")?.as_str()?.to_string(),
            faults_injected: v.get("faults_injected")?.as_u64()?,
            runs_retried: v.get("runs_retried")?.as_u64()?,
            cells_quarantined: v
                .get("cells_quarantined")?
                .as_arr()?
                .iter()
                .map(|q| {
                    Some(QuarantineEntry {
                        site: q.get("site")?.as_str()?.to_string(),
                        network: q.get("network")?.as_str()?.to_string(),
                        protocol: q.get("protocol")?.as_str()?.to_string(),
                        reason: q.get("reason")?.as_str()?.to_string(),
                        attempts: q.get("attempts")?.as_u64()? as u32,
                    })
                })
                .collect::<Option<Vec<_>>>()?,
            // Crash-safety fields postdate the first recorded
            // manifests; missing keys decode as the fresh-run
            // defaults so old baselines stay parseable.
            resumable: v.get("resumable").map_or(Some(false), |b| b.as_bool())?,
            resumed_from_cells: v
                .get("resumed_from_cells")
                .map_or(Some(0), |n| n.as_u64())?,
            journal_records: v.get("journal_records").map_or(Some(0), |n| n.as_u64())?,
            cells_timed_out: v.get("cells_timed_out").map_or(Some(0), |n| n.as_u64())?,
            lint_baseline_count: v.get("lint_baseline_count")?.as_u64()?,
            alloc: match v.get("alloc") {
                None => None,
                Some(a) => Some(AllocReport {
                    total_allocs: a.get("total_allocs")?.as_u64()?,
                    total_bytes: a.get("total_bytes")?.as_u64()?,
                    peak_bytes: a.get("peak_bytes")?.as_u64()?,
                    phases: a
                        .get("phases")?
                        .as_arr()?
                        .iter()
                        .map(|p| {
                            Some(AllocPhase {
                                phase: p.get("phase")?.as_str()?.to_string(),
                                allocs: p.get("allocs")?.as_u64()?,
                                bytes: p.get("bytes")?.as_u64()?,
                            })
                        })
                        .collect::<Option<Vec<_>>>()?,
                }),
            },
            edge: match v.get("edge") {
                None => None,
                Some(e) => Some(EdgeBlock {
                    stacks: e
                        .get("stacks")?
                        .as_arr()?
                        .iter()
                        .map(|s| Some(s.as_str()?.to_string()))
                        .collect::<Option<Vec<_>>>()?,
                    pool_size: e.get("pool_size")?.as_u64()?,
                    replicas: e.get("replicas")?.as_u64()?,
                    conns_opened: e.get("conns_opened")?.as_u64()?,
                    conns_reused: e.get("conns_reused")?.as_u64()?,
                    conns_evicted: e.get("conns_evicted")?.as_u64()?,
                    mbx_early_retx: e.get("mbx_early_retx")?.as_u64()?,
                }),
            },
        })
    }

    /// Write the manifest to `path` (creating parent directories).
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        write_json(path, &self.to_json())
    }
}

/// `git rev-parse --short HEAD`, or `"unknown"`.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Write any JSON value to `path`, creating parent directories. Goes
/// through pq-ckpt's `atomic_write` (temp + fsync + rename) so readers
/// of `results/*` never observe a torn manifest.
pub fn write_json(path: &str, v: &Value) -> std::io::Result<()> {
    pq_ckpt::atomic_write(path, v.to_pretty().as_bytes())
}

/// The `BENCH_obs.json` regression baseline: phase wall-times plus
/// event-queue throughput of the run.
pub fn bench_obs_json(timer: &PhaseTimer, scale: &str, seed: u64) -> Value {
    let reg = pq_obs::registry();
    let events = match reg.get("sim.events_processed") {
        Some(MetricSnapshot::Counter(v)) => v,
        _ => 0,
    };
    let pageloads = match reg.get("web.pageloads") {
        Some(MetricSnapshot::Counter(v)) => v,
        _ => 0,
    };
    let par_tasks = match reg.get("par.tasks") {
        Some(MetricSnapshot::Counter(v)) => v,
        _ => 0,
    };
    let par_steals = match reg.get("par.steals") {
        Some(MetricSnapshot::Counter(v)) => v,
        _ => 0,
    };
    // Per-worker balance: scan the registry for the labelled
    // `par.worker_tasks{worker="N"}` counters the pool flushes, pair
    // each with its steal counter, and sort by worker id so scheduler
    // skew is visible in the baseline (not just the totals).
    let mut workers: Vec<(u64, u64, u64)> = reg
        .snapshot()
        .keys()
        .filter_map(|name| {
            let id: u64 = name
                .strip_prefix("par.worker_tasks{worker=\"")?
                .strip_suffix("\"}")?
                .parse()
                .ok()?;
            let tasks = reg.counter_value(name);
            let steals = reg.counter_value(&format!("par.worker_steals{{worker=\"{id}\"}}"));
            Some((id, tasks, steals))
        })
        .collect();
    workers.sort_unstable();
    let total = timer.total_secs();
    Value::obj()
        .with("bench", "pq_obs_pipeline")
        .with("scale", scale)
        .with("seed", seed)
        .with("jobs", pq_par::jobs() as u64)
        .with("par_tasks", par_tasks)
        .with("par_steals", par_steals)
        .with(
            "workers",
            workers
                .into_iter()
                .map(|(id, tasks, steals)| {
                    Value::obj()
                        .with("worker", id)
                        .with("tasks", tasks)
                        .with("steals", steals)
                })
                .collect::<Vec<_>>(),
        )
        .with("total_secs", total)
        .with("phases", timer.to_json())
        .with("sim_events", events)
        .with(
            "events_per_sec",
            if total > 0.0 {
                events as f64 / total
            } else {
                0.0
            },
        )
        .with("pageloads", pageloads)
        // Crash-safety accounting: zeros on a fresh un-journalled run,
        // so the baseline shape is stable while resumed / watchdogged
        // runs stay distinguishable in the perf trajectory.
        .with(
            "resumed_from_cells",
            match reg.get("run.resumed_cells") {
                Some(MetricSnapshot::Counter(v)) => v,
                _ => 0,
            },
        )
        .with(
            "cells_timed_out",
            match reg.get("run.cells_timed_out") {
                Some(MetricSnapshot::Counter(v)) => v,
                _ => 0,
            },
        )
        .with(
            "journal_records",
            if pq_ckpt::journal_active() {
                pq_ckpt::replayed_count() + pq_ckpt::records_written()
            } else {
                0
            },
        )
}

/// The `edge` block for `BENCH_obs.json`: pool and middlebox activity
/// counters. `None` when no edge stack ran (none of the `edge.*`
/// counters exist), so plain-stack baselines keep their exact shape.
pub fn bench_obs_edge_json() -> Option<Value> {
    let reg = pq_obs::registry();
    let names = [
        "edge.conns_opened",
        "edge.conns_reused",
        "edge.conns_evicted",
        "edge.mbx_early_retx",
    ];
    if !names.iter().any(|n| reg.get(n).is_some()) {
        return None;
    }
    let counter = |name: &str| match reg.get(name) {
        Some(MetricSnapshot::Counter(v)) => v,
        _ => 0,
    };
    let mut v = Value::obj();
    for name in names {
        let key = name.strip_prefix("edge.").unwrap_or(name);
        v.set(key, Value::from(counter(name)));
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_transport::Protocol;

    fn sample() -> Manifest {
        Manifest {
            scale: "smoke".into(),
            seed: 1910,
            jobs: 4,
            study_digest: "00c0ffee00c0ffee".into(),
            git_rev: "abc1234".into(),
            created_unix: 1_765_000_000,
            phase_secs: vec![("experiment".into(), 12.5), ("fig4".into(), 0.25)],
            funnel_ab: vec![FunnelCounts {
                group: "lab".into(),
                recruited: 35,
                after: [35; 7],
            }],
            funnel_rating: vec![FunnelCounts {
                group: "microworker".into(),
                recruited: 487,
                after: [471, 441, 355, 268, 268, 239, 233],
            }],
            plt_ms: vec![PltSummary {
                protocol: "QUIC".into(),
                count: 240,
                p50: 1810.0,
                p90: 4920.5,
                p99: 10230.0,
            }],
            sim_events: 123_456_789,
            pageloads: 240,
            fault_spec: "gel:pgb=0.02;flap:at=1500,dur=400".into(),
            faults_injected: 1702,
            runs_retried: 36,
            cells_quarantined: vec![QuarantineEntry {
                site: "apache.org".into(),
                network: "DSL".into(),
                protocol: "QUIC".into(),
                reason: "incomplete load".into(),
                attempts: 24,
            }],
            resumable: true,
            resumed_from_cells: 5,
            journal_records: 21,
            cells_timed_out: 2,
            lint_baseline_count: 99,
            alloc: Some(AllocReport {
                total_allocs: 48_000_000,
                total_bytes: 9_100_000_000,
                peak_bytes: 310_000_000,
                phases: vec![
                    AllocPhase {
                        phase: "experiment".into(),
                        allocs: 47_000_000,
                        bytes: 9_000_000_000,
                    },
                    AllocPhase {
                        phase: "report".into(),
                        allocs: 12_000,
                        bytes: 3_400_000,
                    },
                ],
            }),
            edge: Some(EdgeBlock {
                stacks: vec!["QUIC-EDGE".into(), "QUIC-MBX".into(), "H2-EDGE".into()],
                pool_size: 2,
                replicas: 2,
                conns_opened: 310,
                conns_reused: 1240,
                conns_evicted: 18,
                mbx_early_retx: 96,
            }),
        }
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = sample();
        let text = m.to_json().to_pretty();
        let parsed = Value::parse(&text).expect("valid JSON");
        let back = Manifest::from_json(&parsed).expect("decodes");
        assert_eq!(m, back);
    }

    #[test]
    fn manifest_without_alloc_round_trips() {
        // Runs without PQ_PROF_ALLOC (and pre-profiling manifests)
        // simply omit the "alloc" key.
        let mut m = sample();
        m.alloc = None;
        let text = m.to_json().to_pretty();
        assert!(!text.contains("\"alloc\""));
        let back = Manifest::from_json(&Value::parse(&text).expect("valid JSON")).expect("decodes");
        assert_eq!(m, back);
    }

    #[test]
    fn manifest_without_edge_round_trips() {
        // Plain five-stack runs (and pre-edge manifests) omit the
        // "edge" key entirely.
        let mut m = sample();
        m.edge = None;
        let text = m.to_json().to_pretty();
        assert!(!text.contains("\"edge\""));
        let back = Manifest::from_json(&Value::parse(&text).expect("valid JSON")).expect("decodes");
        assert_eq!(m, back);
    }

    #[test]
    fn manifest_without_ckpt_fields_decodes_with_defaults() {
        // Manifests recorded before the crash-safety layer carry none
        // of the resume keys; they must decode as a fresh,
        // non-resumable run rather than be rejected.
        let mut v = sample().to_json();
        for key in [
            "resumable",
            "resumed_from_cells",
            "journal_records",
            "cells_timed_out",
        ] {
            v.remove(key);
        }
        let back = Manifest::from_json(&v).expect("old manifests still decode");
        assert!(!back.resumable);
        assert_eq!(back.resumed_from_cells, 0);
        assert_eq!(back.journal_records, 0);
        assert_eq!(back.cells_timed_out, 0);
    }

    #[test]
    fn from_json_rejects_mistyped_fields() {
        let mut v = sample().to_json();
        v.set("seed", "not-a-number");
        assert!(Manifest::from_json(&v).is_none());
    }

    #[test]
    fn study_digest_deterministic_and_seed_sensitive() {
        let sites = vec![pq_web::catalogue::site("apache.org").unwrap()];
        let stimuli =
            pq_study::StimulusSet::build(&sites, &pq_sim::NetworkKind::ALL, &Protocol::ALL, 2, 77);
        let a = pq_study::run_study(&stimuli, 1);
        let b = pq_study::run_study(&stimuli, 1);
        let c = pq_study::run_study(&stimuli, 2);
        assert_eq!(study_digest(&a), study_digest(&b), "same seed, same digest");
        assert_ne!(study_digest(&a), study_digest(&c), "digest tracks the data");
    }

    #[test]
    fn bench_obs_shape() {
        let timer = PhaseTimer::new();
        let v = bench_obs_json(&timer, "smoke", 7);
        assert_eq!(v.get("scale").and_then(|s| s.as_str()), Some("smoke"));
        assert!(v.get("events_per_sec").is_some());
        let text = v.to_pretty();
        assert!(Value::parse(&text).is_ok());
    }
}
