//! # pq-bench — the experiment harness
//!
//! One binary per table/figure of the paper (run with
//! `cargo run --release -p pq-bench --bin <name>`):
//!
//! | Binary | Artefact |
//! |--------|----------|
//! | `table1` | Table 1 — protocol configurations |
//! | `table2` | Table 2 — network configurations + emulation validation |
//! | `table3` | Table 3 — participation / conformance-filter funnel |
//! | `fig3`   | Figure 3 — rating agreement across subject groups |
//! | `fig4`   | Figure 4 — A/B vote shares per pair × network |
//! | `fig5`   | Figure 5 — rating means + CIs, ANOVA significance |
//! | `fig6`   | Figure 6 — metric ↔ vote Pearson heatmap |
//! | `agreement` | §4.2 — answer times, replays, demographics |
//! | `ablation`  | extra — filtering, 0-RTT and processing ablations |
//! | `sweep`     | extra — bandwidth × loss × RTT map of the QUIC/TCP+ SI ratio |
//! | `export`    | raw study data as JSON (mirrors the paper's data release) |
//! | `runall` | everything above, in order |
//!
//! The experiment scale is controlled with `PQ_SCALE`
//! (`smoke` / `reduced` / `full`) and `PQ_SEED`; `full` matches the
//! paper (36 sites × 4 networks × 5 stacks × 31 runs).
//!
//! ## Parallel execution
//!
//! The stimulus grid, both studies and the `sweep` grid execute on the
//! `pq-par` work-stealing pool. `PQ_JOBS` sets the worker count
//! (default: available parallelism; unparsable values warn via the
//! tracer). Output is **bit-identical at any worker count** — every
//! page load and participant derives its RNG purely from
//! `(seed, cell indices)` — and the run manifest records both `jobs`
//! and a `study_digest` so CI can diff a `PQ_JOBS=4` run against
//! `PQ_JOBS=1` and prove it.
//!
//! ## Fault injection
//!
//! Setting `PQ_FAULTS=<spec>` (see [`pq_fault`]) turns the run into a
//! chaos experiment: deterministic burst loss, link flaps, server
//! stalls, truncated responses, handshake-flight drops and task
//! panics, all keyed by `(fault seed, cell coordinates)` so the run is
//! still bit-identical at any `PQ_JOBS`. The manifest then records
//! `fault_spec`, `faults_injected`, `runs_retried` and
//! `cells_quarantined` alongside the usual digest.
//!
//! ## Observability
//!
//! Every binary initialises [`pq_obs`] from the environment:
//!
//! * `PQ_TRACE` — trace level (`off`/`error`/`warn`/`info`/`debug`/
//!   `trace`; default `off`). At `info` each page load records its
//!   waterfall: per-object request→processed spans, one track per
//!   connection with cwnd/ssthresh/sRTT counters, retransmit and RTO
//!   instants, handshake spans, and FVC/LVC/PLT markers.
//! * `PQ_TRACE_OUT` — where to write the collected events on exit:
//!   `*.json` produces Chrome trace-event format (open in Perfetto or
//!   `chrome://tracing`), `*.jsonl` line-delimited JSON.
//! * `PQ_TRACE_BUF` — ring capacity in events (default 262144; the
//!   ring overwrites oldest on overflow).
//!
//! Worked waterfall example:
//!
//! ```sh
//! PQ_SCALE=smoke PQ_TRACE=info PQ_TRACE_OUT=results/trace.json \
//!     cargo run --release -p pq-bench --bin fig4
//! # then load results/trace.json into https://ui.perfetto.dev
//! ```
//!
//! `runall` additionally writes `results/manifest.json` — scale, seed,
//! git rev, per-phase wall-times, Table-3 funnel counts and
//! per-protocol PLT p50/p90/p99 (see [`manifest::Manifest`]) — and
//! `results/BENCH_obs.json`, the phase-timing + events/sec regression
//! baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manifest;
pub mod report;
pub mod trajectory;

use pq_sim::NetworkKind;
use pq_study::{run_study_with, StimulusSet, StudyData};
use pq_transport::Protocol;
use pq_web::{catalogue, Website};

/// How much of the full condition space to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// 4 sites × 3 runs — seconds; CI smoke tests.
    Smoke,
    /// 12 sites × 11 runs — a coffee break.
    Reduced,
    /// 36 sites × 31 runs — the paper's full design.
    Full,
}

impl Scale {
    /// Read from `PQ_SCALE` (default `reduced`). Unknown values warn
    /// via the tracer instead of being silently swallowed.
    pub fn from_env() -> Scale {
        match pq_obs::env::var("PQ_SCALE").as_deref() {
            Some("smoke") => Scale::Smoke,
            Some("reduced") => Scale::Reduced,
            Some("full") => Scale::Full,
            Some(other) => {
                pq_obs::tracer().warn(
                    "bench",
                    format!(
                        "unknown PQ_SCALE={other:?} (expected smoke|reduced|full); \
                         defaulting to reduced"
                    ),
                );
                Scale::Reduced
            }
            None => Scale::Reduced,
        }
    }

    /// (sites, runs per condition).
    pub fn params(self) -> (usize, u32) {
        match self {
            Scale::Smoke => (4, 3),
            Scale::Reduced => (12, 11),
            Scale::Full => (36, 31),
        }
    }

    /// Human label.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Reduced => "reduced",
            Scale::Full => "full",
        }
    }
}

/// Study seed from `PQ_SEED` (default 1910, the paper's arXiv month).
/// An unparsable value warns via the tracer instead of being silently
/// replaced by the default.
pub fn seed_from_env() -> u64 {
    match pq_obs::env::var("PQ_SEED") {
        Some(s) => match s.parse() {
            Ok(seed) => seed,
            Err(_) => {
                pq_obs::tracer().warn(
                    "bench",
                    format!("unparsable PQ_SEED={s:?}; defaulting to 1910"),
                );
                1910
            }
        },
        None => 1910,
    }
}

/// The corpus subset for a scale: always includes the five lab sites
/// and the §4.4 named sites first.
pub fn sites_for(scale: Scale) -> Vec<Website> {
    let (n, _) = scale.params();
    catalogue::corpus().into_iter().take(n.max(4)).collect()
}

/// A fully executed experiment: stimuli plus both studies' raw data.
pub struct Experiment {
    /// Which scale was run.
    pub scale: Scale,
    /// Study seed.
    pub seed: u64,
    /// Protocol stacks the grid was built over (sorted; the paper's
    /// five by default, optionally extended with the edge stacks via
    /// `PQ_STACKS`).
    pub stacks: Vec<Protocol>,
    /// Typical videos per condition.
    pub stimuli: StimulusSet,
    /// Raw votes, funnels and sessions.
    pub data: StudyData,
}

/// Run the full pipeline (stimulus production + both studies) over the
/// paper's five Table-1 stacks.
pub fn run_experiment(scale: Scale, seed: u64) -> Experiment {
    run_experiment_with_stacks(scale, seed, &Protocol::ALL)
}

/// Run the full pipeline over an explicit stack selection. With
/// `&Protocol::ALL` this is byte-for-byte the baseline experiment —
/// [`Protocol::pairs_for`] then yields exactly the Figure-4 pairings —
/// so enabling edge stacks can never disturb the committed digest.
pub fn run_experiment_with_stacks(scale: Scale, seed: u64, stacks: &[Protocol]) -> Experiment {
    let sites = sites_for(scale);
    let (_, runs) = scale.params();
    let stimuli = StimulusSet::build(&sites, &NetworkKind::ALL, stacks, runs, seed);
    let pairs = Protocol::pairs_for(stacks);
    let data = run_study_with(&stimuli, &pairs, stacks, seed);
    Experiment {
        scale,
        seed,
        stacks: stacks.to_vec(),
        stimuli,
        data,
    }
}

/// Run with environment-controlled scale/seed/stacks, echoing the
/// setup. `PQ_STACKS` (see [`pq_edge::stacks_from_env`]) selects the
/// protocol grid; unset keeps the paper's five stacks.
pub fn run_experiment_from_env(header: &str) -> Experiment {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let jobs = pq_par::jobs();
    let faulted = pq_fault::init_from_env();
    let stacks = pq_edge::stacks_from_env();
    let (sites, runs) = scale.params();
    eprintln!(
        "[{header}] scale={} ({sites} sites × 4 networks × {} stacks × {runs} runs), \
         seed={seed}, jobs={jobs}{}",
        scale.label(),
        stacks.len(),
        if faulted { ", faults=ON" } else { "" },
    );
    let t0 = std::time::Instant::now();
    let e = run_experiment_with_stacks(scale, seed, &stacks);
    eprintln!("[{header}] pipeline done in {:.1?}", t0.elapsed());
    e
}

/// Pretty vote-share bar for terminal tables. Out-of-range shares are
/// clamped to `[0, 1]` (NaN renders empty) so a buggy upstream share
/// can never overflow the table layout.
pub fn share_bar(share: f64, width: usize) -> String {
    let share = if share.is_nan() {
        0.0
    } else {
        share.clamp(0.0, 1.0)
    };
    let filled = (share * width as f64).round() as usize;
    let mut s = String::new();
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_params() {
        assert_eq!(Scale::Smoke.params(), (4, 3));
        assert_eq!(Scale::Full.params(), (36, 31));
        assert_eq!(Scale::Full.label(), "full");
    }

    #[test]
    fn sites_include_lab_domains_at_every_scale() {
        let sites = sites_for(Scale::Smoke);
        assert!(sites.iter().any(|s| s.name == "wikipedia.org"));
        assert_eq!(sites_for(Scale::Full).len(), 36);
    }

    #[test]
    fn smoke_experiment_runs() {
        let e = run_experiment(Scale::Smoke, 5);
        assert!(!e.data.ab.is_empty());
        assert!(!e.data.ratings.is_empty());
        assert_eq!(e.stimuli.site_count(), 4);
    }

    #[test]
    fn share_bar_renders() {
        assert_eq!(share_bar(0.5, 10), "#####.....");
        assert_eq!(share_bar(0.0, 4), "....");
        assert_eq!(share_bar(1.0, 4), "####");
    }

    #[test]
    fn share_bar_clamps_out_of_range() {
        // > 1.0 must not overflow the bar width.
        assert_eq!(share_bar(1.7, 4), "####");
        assert_eq!(share_bar(f64::INFINITY, 4), "####");
        // Negative shares clamp to empty.
        assert_eq!(share_bar(-0.3, 4), "....");
        assert_eq!(share_bar(f64::NEG_INFINITY, 4), "....");
        // NaN renders empty rather than panicking or filling.
        assert_eq!(share_bar(f64::NAN, 4), "....");
    }
}
