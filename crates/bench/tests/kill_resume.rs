//! Kill-resume end-to-end: SIGKILL `runall` mid-sweep, resume with
//! `PQ_RESUME=1`, and require a `study_digest` bit-identical to an
//! uninterrupted run — across different `PQ_JOBS` worker counts.
//!
//! This is the acceptance test of the crash-safety layer: the child
//! process is killed without any chance to clean up (SIGKILL, not
//! SIGTERM), so everything the resumed run recovers comes from the
//! write-ahead cell journal alone.

#![cfg(unix)]

use pq_bench::manifest::Manifest;
use pq_obs::json::Value;
use std::path::Path;
use std::process::{Command, Stdio};

/// Run `runall` to completion in `dir` and return its parsed manifest.
fn run_to_completion(dir: &Path, jobs: &str, resume: bool) -> Manifest {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_runall"));
    cmd.current_dir(dir)
        .env("PQ_SCALE", "smoke")
        .env("PQ_SEED", "1910")
        .env("PQ_JOBS", jobs)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if resume {
        cmd.env("PQ_RESUME", "1");
    }
    let status = cmd.status().expect("spawn runall");
    assert!(status.success(), "runall failed in {}", dir.display());
    let text = std::fs::read_to_string(dir.join("results/manifest.json")).expect("manifest");
    Manifest::from_json(&Value::parse(&text).expect("manifest JSON")).expect("manifest decodes")
}

/// Count intact journal records (complete lines) in `dir`.
fn journal_lines(dir: &Path) -> usize {
    std::fs::read_to_string(dir.join("results/journal.jsonl"))
        .map(|s| s.lines().count())
        .unwrap_or(0)
}

#[test]
fn sigkill_mid_sweep_then_resume_is_bit_identical() {
    let base = std::env::temp_dir().join(format!("pq-kill-resume-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let clean_dir = base.join("clean");
    let killed_dir = base.join("killed");
    std::fs::create_dir_all(&clean_dir).unwrap();
    std::fs::create_dir_all(&killed_dir).unwrap();

    // Uninterrupted baseline at 4 workers.
    let clean = run_to_completion(&clean_dir, "4", false);
    assert_eq!(clean.resumed_from_cells, 0);
    assert!(!clean.resumable);
    assert!(
        !clean_dir.join("results/journal.jsonl").exists(),
        "journal must be retired after a completed run"
    );

    // Interrupted run at 1 worker: SIGKILL as soon as a few cells are
    // durable — no destructors, no signal handler, nothing but the
    // journal survives.
    let mut child = Command::new(env!("CARGO_BIN_EXE_runall"))
        .current_dir(&killed_dir)
        .env("PQ_SCALE", "smoke")
        .env("PQ_SEED", "1910")
        .env("PQ_JOBS", "1")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn runall");
    let mut polls = 0;
    while journal_lines(&killed_dir) < 4 {
        polls += 1;
        assert!(polls < 6000, "journal never grew; is checkpointing wired?");
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("runall finished before it could be killed: {status}");
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL runall");
    child.wait().expect("reap runall");
    let after_kill = journal_lines(&killed_dir);
    assert!(
        killed_dir.join("results/journal.jsonl").exists(),
        "journal must survive a SIGKILL"
    );

    // Resume at 4 workers: completed cells replayed, the rest rebuilt,
    // output digest bit-identical to the uninterrupted baseline.
    let resumed = run_to_completion(&killed_dir, "4", true);
    assert_eq!(
        resumed.study_digest, clean.study_digest,
        "resumed digest diverged from the uninterrupted baseline"
    );
    assert!(
        resumed.resumed_from_cells > 0,
        "nothing was resumed (journal had {after_kill} lines at kill time)"
    );
    assert!(!resumed.resumable);
    assert!(resumed.journal_records > 0);
    assert!(
        !killed_dir.join("results/journal.jsonl").exists(),
        "journal must be retired after the resumed run completes"
    );

    std::fs::remove_dir_all(&base).ok();
}
