//! # pq-par — deterministic work-stealing execution for the grid
//!
//! The experiment pipeline is embarrassingly parallel: 36 sites × 4
//! networks × 5 stacks × ≥31 runs of independent page-load simulations
//! at full scale, plus three independent study groups of simulated
//! participants. This crate is the zero-dependency execution engine
//! that spreads that grid across cores **without changing a single
//! bit of output**:
//!
//! * [`par_map`] / [`par_map_indexed`] — order-preserving
//!   scatter-gather over a slice. Work is cut into contiguous index
//!   chunks and scheduled on a `std::thread`-scoped work-stealing pool
//!   (per-worker chunked deques, a shared injector behind a
//!   `Mutex`/`Condvar`, panic propagation to the caller).
//! * [`jobs`] — the worker count: the `PQ_JOBS` environment knob,
//!   defaulting to [`std::thread::available_parallelism`]. Unparsable
//!   values warn through the `pq-obs` tracer (once) instead of being
//!   silently swallowed. [`set_jobs`] overrides it programmatically
//!   (tests sweep `1 / 2 / 8` workers in-process this way).
//! * [`cell_deadline_exceeded`] — the per-cell wall-clock watchdog
//!   (`PQ_CELL_TIMEOUT_MS`): the pool stamps every task's start time,
//!   long-running cells poll the deadline at their cancellation points
//!   and get quarantined instead of hanging the sweep, and a watchdog
//!   thread warns (via pq-ckpt's sink) about workers stuck past
//!   budget. Off by default; wall-clock never feeds simulated data.
//!
//! ## The determinism contract
//!
//! Parallel output is **bit-identical** to serial output because the
//! engine preserves item order in the gathered result and because
//! every call site derives its randomness purely from `(seed, cell
//! indices)` — e.g. `StimulusSet::build` keys each page load's RNG as
//! `fork_idx("site/net/proto", run)` from the root seed, and the study
//! runner keys each participant as `fork_idx(group, id)`. No RNG is
//! ever threaded sequentially across cells, so chunk placement, steal
//! order and worker count cannot influence results. `PQ_JOBS=1` and
//! `PQ_JOBS=32` produce the same manifest digests, figures and tables;
//! the cross-crate test suite pins this.
//!
//! ## Observability
//!
//! With `PQ_TRACE=info` each worker gets its own trace track
//! (`pq-par worker-N`) carrying a lifetime span (tasks/chunks/steals
//! args) and, at `debug`, one span per executed chunk. Every batch
//! adds to the global `par.tasks` / `par.steals` registry counters,
//! and `pq-bench`'s run manifest records the `jobs` value so serial
//! and parallel baselines are never conflated.
//!
//! ```
//! let squares = pq_par::par_map(&[1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // Indexed variant: derive per-cell streams from the index.
//! let cells = pq_par::par_map_indexed(&["a", "b"], |i, s| format!("{i}:{s}"));
//! assert_eq!(cells, vec!["0:a".to_string(), "1:b".to_string()]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deadline;
mod pool;

pub use deadline::{cell_deadline_exceeded, cell_timeout_ms, set_cell_timeout_ms};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

/// Programmatic override installed by [`set_jobs`] (0 = none).
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Warn about an unparsable `PQ_JOBS` at most once per process.
static WARN_ONCE: Once = Once::new();

/// Number of workers the machine can usefully run: available
/// parallelism, or 1 when the runtime cannot tell.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The effective worker count, resolved in priority order:
///
/// 1. a [`set_jobs`] override (tests, embedding harnesses),
/// 2. the `PQ_JOBS` environment variable (`>= 1`),
/// 3. [`available_jobs`].
///
/// An unparsable or zero `PQ_JOBS` warns via the `pq-obs` tracer
/// (mirroring the `PQ_SCALE`/`PQ_SEED` warnings in `pq-bench`) and
/// falls back to [`available_jobs`] — configuration is never silently
/// swallowed.
pub fn jobs() -> usize {
    let forced = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    match pq_obs::env::var("PQ_JOBS") {
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                let fallback = available_jobs();
                WARN_ONCE.call_once(|| {
                    pq_obs::tracer().warn(
                        "par",
                        format!(
                            "unparsable PQ_JOBS={raw:?} (want an integer >= 1); \
                             defaulting to available parallelism ({fallback})"
                        ),
                    );
                });
                fallback
            }
        },
        None => available_jobs(),
    }
}

/// Override the worker count for the whole process (`None` restores
/// `PQ_JOBS` / auto-detection). Intended for tests and embedding
/// harnesses that must sweep worker counts without touching the
/// environment.
pub fn set_jobs(jobs: Option<usize>) {
    JOBS_OVERRIDE.store(jobs.unwrap_or(0), Ordering::Relaxed);
}

/// Map `f` over `items` on [`jobs`] workers, returning outputs in
/// item order. Bit-identical to `items.iter().map(f).collect()` when
/// `f` is pure per item; see the crate docs for the determinism
/// contract. Panics in `f` propagate to the caller (first payload
/// wins; remaining work is dropped).
pub fn par_map<T, R>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    pool::execute(jobs(), items, |_, t| f(t))
}

/// [`par_map`] with the item index passed to `f` — the variant every
/// deterministic call site wants, since the index is what keys the
/// per-cell RNG stream.
pub fn par_map_indexed<T, R>(items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    pool::execute(jobs(), items, f)
}

/// [`par_map`] with an explicit worker count (ignores [`jobs`]).
pub fn par_map_with<T, R>(workers: usize, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    pool::execute(workers, items, |_, t| f(t))
}

/// [`par_map_indexed`] with an explicit worker count.
pub fn par_map_indexed_with<T, R>(
    workers: usize,
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    pool::execute(workers, items, f)
}

/// A single task panicked inside a `try_par_map*` call. The panic was
/// contained: sibling tasks ran to completion and their results were
/// delivered — only the panicking task's slot carries this error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// The panic payload, stringified (`&str` / `String` payloads are
    /// preserved verbatim).
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskPanic {}

thread_local! {
    /// Whether the current thread is inside a `try_par_map*` task
    /// whose panic will be caught — used by the quiet panic hook to
    /// suppress the default stderr backtrace spam for *contained*
    /// panics only.
    static CATCHING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install (once) a panic hook that stays silent for panics the
/// `try_par_map*` family is about to catch, and defers to the
/// previously installed hook for everything else.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !CATCHING.with(std::cell::Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Stringify a panic payload (`&str` / `String` pass through).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Run one task, converting a panic into a [`TaskPanic`] error and
/// bumping the `par.task_panics` counter.
fn run_caught<R>(f: impl FnOnce() -> R) -> Result<R, TaskPanic> {
    install_quiet_hook();
    CATCHING.with(|c| c.set(true));
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    CATCHING.with(|c| c.set(false));
    res.map_err(|payload| {
        pq_obs::registry().counter_add("par.task_panics", 1);
        TaskPanic {
            message: panic_message(payload.as_ref()),
        }
    })
}

/// Panic-isolating [`par_map`]: a panic in `f` fails only that item's
/// slot (as `Err(TaskPanic)`) while every sibling's result is still
/// delivered, in item order. This is how the grid runner absorbs a
/// dying cell instead of tearing down the whole `runall`.
pub fn try_par_map<T, R>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<Result<R, TaskPanic>>
where
    T: Sync,
    R: Send,
{
    pool::execute(jobs(), items, |_, t| run_caught(|| f(t)))
}

/// Panic-isolating [`par_map_indexed`].
pub fn try_par_map_indexed<T, R>(
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<Result<R, TaskPanic>>
where
    T: Sync,
    R: Send,
{
    pool::execute(jobs(), items, |i, t| run_caught(|| f(i, t)))
}

/// [`try_par_map_indexed`] with an explicit worker count.
pub fn try_par_map_indexed_with<T, R>(
    workers: usize,
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<Result<R, TaskPanic>>
where
    T: Sync,
    R: Send,
{
    pool::execute(workers, items, |i, t| run_caught(|| f(i, t)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    /// Serialise tests that toggle the global override.
    fn with_override<R>(jobs: Option<usize>, f: impl FnOnce() -> R) -> R {
        static GUARD: Mutex<()> = Mutex::new(());
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_jobs(jobs);
        let out = f();
        set_jobs(None);
        out
    }

    #[test]
    fn empty_input() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map_with(4, &none, |x| x + 1).is_empty());
        assert!(par_map_indexed_with(4, &none, |i, x| x + i as u32).is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(par_map_with(8, &[41u32], |x| x + 1), vec![42]);
    }

    #[test]
    fn more_workers_than_items() {
        let items: Vec<u32> = (0..3).collect();
        let out = par_map_with(64, &items, |&x| x * 2);
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        // Float outputs — bit-identity, not approximate equality.
        let items: Vec<u64> = (0..1000).collect();
        let f = |i: usize, &x: &u64| ((x as f64) + 0.1).sin() * (i as f64 + 0.7).cos();
        let serial: Vec<f64> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        for workers in [1usize, 2, 3, 8] {
            let par = par_map_indexed_with(workers, &items, f);
            let same = serial
                .iter()
                .zip(&par)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "workers={workers} diverged from serial");
        }
    }

    #[test]
    fn panic_propagates_with_payload() {
        let items: Vec<u32> = (0..100).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            par_map_with(4, &items, |&x| {
                if x == 37 {
                    panic!("cell 37 exploded");
                }
                x
            })
        }))
        .expect_err("panic must reach the caller");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("cell 37 exploded"), "payload: {msg}");
    }

    #[test]
    fn panic_aborts_remaining_work_eventually() {
        // After a panic the batch drains without running *every* cell:
        // with 1 chunk per grab and an immediate abort flag, at most
        // the in-flight chunks complete. We only assert the call
        // returns (no deadlock) and panics.
        let done = AtomicU64::new(0);
        let items: Vec<u32> = (0..10_000).collect();
        let res = catch_unwind(AssertUnwindSafe(|| {
            par_map_with(4, &items, |&x| {
                if x == 0 {
                    panic!("early");
                }
                done.fetch_add(1, Ordering::Relaxed);
                x
            })
        }));
        assert!(res.is_err());
        assert!(done.load(Ordering::Relaxed) < 10_000, "batch aborted early");
    }

    #[test]
    fn jobs_override_wins() {
        with_override(Some(3), || assert_eq!(jobs(), 3));
        with_override(None, || assert!(jobs() >= 1));
    }

    #[test]
    fn par_tasks_counter_advances() {
        let before = pq_obs::registry().counter_value("par.tasks");
        let items: Vec<u32> = (0..256).collect();
        let _ = par_map_with(4, &items, |&x| x);
        let after = pq_obs::registry().counter_value("par.tasks");
        assert!(
            after >= before + 256,
            "par.tasks advanced by the batch size ({before} -> {after})"
        );
    }

    #[test]
    fn available_jobs_positive() {
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn try_map_isolates_a_panicking_task() {
        // One panicking task fails only that task; every sibling's
        // result is delivered, in order.
        let items: Vec<u32> = (0..200).collect();
        for workers in [1usize, 4] {
            let out = try_par_map_indexed_with(workers, &items, |_, &x| {
                if x == 57 {
                    panic!("task 57 exploded");
                }
                x * 2
            });
            assert_eq!(out.len(), 200);
            for (i, r) in out.iter().enumerate() {
                if i == 57 {
                    let err = r.as_ref().expect_err("57 must fail");
                    assert!(err.message.contains("task 57 exploded"), "{err}");
                } else {
                    assert_eq!(*r, Ok((i as u32) * 2), "sibling {i} lost");
                }
            }
        }
    }

    #[test]
    fn try_map_counts_panics_and_formats_payloads() {
        let before = pq_obs::registry().counter_value("par.task_panics");
        let items: Vec<u32> = (0..8).collect();
        let out = try_par_map(&items, |&x| {
            if x % 2 == 0 {
                // String payload (panic! with formatting).
                panic!("even {x}");
            }
            x
        });
        let failed = out.iter().filter(|r| r.is_err()).count();
        assert_eq!(failed, 4);
        assert!(out[2].as_ref().is_err_and(|e| e.message == "even 2"));
        let after = pq_obs::registry().counter_value("par.task_panics");
        assert!(after >= before + 4, "panic counter ({before} -> {after})");
    }

    #[test]
    fn try_map_all_ok_matches_par_map() {
        let items: Vec<u64> = (0..512).collect();
        let plain = par_map_with(4, &items, |&x| x.wrapping_mul(2654435761));
        let tried = try_par_map_indexed_with(4, &items, |_, &x| x.wrapping_mul(2654435761));
        let unwrapped: Vec<u64> = tried.into_iter().map(|r| r.expect("no panics")).collect();
        assert_eq!(plain, unwrapped);
    }
}
