//! The work-stealing scatter-gather engine behind [`par_map`].
//!
//! One batch = one [`std::thread::scope`]. The item index space is cut
//! into contiguous [`Chunk`]s; each worker owns a chunked deque (LIFO
//! for its own work, FIFO for thieves) and a shared injector queue
//! (behind a `Mutex`/`Condvar` pair) holds the overflow. A worker that
//! runs dry pops the injector, then steals from its siblings, and only
//! parks on the condvar when every queue is empty but chunks are still
//! in flight on other workers (they cannot be stolen mid-chunk, so
//! there is genuinely nothing to do but wait for batch completion or
//! abort).
//!
//! Determinism: the engine never reorders *results*. Each chunk
//! remembers the index range it covers; workers return `(start,
//! Vec<R>)` fragments which the caller sorts by `start` and flattens,
//! so the output of [`execute`] is bit-identical to a serial
//! `items.iter().enumerate().map(f).collect()` — provided `f` derives
//! everything (RNG streams included) from the item and its index
//! alone, never from execution order. All call sites in this workspace
//! key their RNG as `fork_idx(label, index)` for exactly this reason.
//!
//! Panics: a panicking task does not tear down the process. The first
//! payload is captured, the batch aborts early (remaining chunks are
//! dropped), sibling workers drain out, and the payload is re-raised
//! on the calling thread via [`std::panic::resume_unwind`] — the same
//! contract as `rayon` and `std::thread::scope`.
//!
//! [`par_map`]: crate::par_map
//! [`execute`]: execute

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use pq_obs::{ArgValue, Level};

/// A contiguous, half-open range of item indices — the unit of
/// scheduling (and of stealing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Chunk {
    /// First item index covered.
    pub start: usize,
    /// One past the last item index covered.
    pub end: usize,
}

impl Chunk {
    fn len(self) -> usize {
        self.end - self.start
    }
}

/// Target number of chunks per worker: small enough that chunk
/// dispatch overhead is negligible next to a page-load simulation,
/// large enough that stealing can rebalance a skewed grid (slow sites
/// cluster: MSS cells cost ~10× DSL cells).
const CHUNKS_PER_WORKER: usize = 8;

/// How many chunks are dealt round-robin into each worker's own deque
/// before the rest overflow into the shared injector.
const INITIAL_PER_WORKER: usize = 2;

/// Park timeout while waiting for batch completion — a belt-and-braces
/// bound on lost-wakeup stalls, not a scheduling quantum.
const PARK: Duration = Duration::from_millis(2);

/// Cut `n` items into chunks sized for `workers` workers.
pub(crate) fn chunks_for(n: usize, workers: usize) -> Vec<Chunk> {
    if n == 0 {
        return Vec::new();
    }
    let target = workers.max(1) * CHUNKS_PER_WORKER;
    let size = n.div_ceil(target).max(1);
    let mut out = Vec::with_capacity(n.div_ceil(size));
    let mut start = 0;
    while start < n {
        let end = (start + size).min(n);
        out.push(Chunk { start, end });
        start = end;
    }
    out
}

/// Everything the workers of one batch share.
struct Shared<R> {
    /// Overflow queue, protected by the mutex the condvar pairs with.
    injector: Mutex<VecDeque<Chunk>>,
    /// Signalled on batch completion, abort, and injector refills.
    bell: Condvar,
    /// One chunked deque per worker.
    deques: Vec<Mutex<VecDeque<Chunk>>>,
    /// Chunks not yet finished (in a queue or in flight).
    pending: AtomicUsize,
    /// Set on the first panic: drop remaining work, drain out.
    abort: AtomicBool,
    /// First captured panic payload, re-raised by the caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Order-restoring result fragments: `(chunk start, outputs)`.
    results: Mutex<Vec<(usize, Vec<R>)>>,
    /// Tasks (items) executed across the batch.
    tasks: AtomicU64,
    /// Chunks obtained by stealing from a sibling's deque.
    steals: AtomicU64,
    /// Watchdog state, present only when a cell deadline is
    /// configured: a batch epoch and one heartbeat slot per worker
    /// (0 = idle, else ms-since-epoch of the current task's start +1).
    watchdog: Option<(Instant, Vec<AtomicU64>)>,
}

impl<R> Shared<R> {
    fn new(workers: usize, chunks: Vec<Chunk>) -> Shared<R> {
        let mut deques: Vec<Mutex<VecDeque<Chunk>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        let mut injector = VecDeque::new();
        let pending = chunks.len();
        for (i, c) in chunks.into_iter().enumerate() {
            if i < workers * INITIAL_PER_WORKER {
                deques[i % workers]
                    .get_mut()
                    .expect("fresh deque")
                    .push_back(c);
            } else {
                injector.push_back(c);
            }
        }
        let watchdog = crate::deadline::cell_timeout_ms().map(|_| {
            // pq-lint: allow(time) -- watchdog heartbeat epoch; only armed when PQ_CELL_TIMEOUT_MS is set and never feeds simulated data
            let epoch = Instant::now();
            (epoch, (0..workers).map(|_| AtomicU64::new(0)).collect())
        });
        Shared {
            injector: Mutex::new(injector),
            bell: Condvar::new(),
            deques,
            pending: AtomicUsize::new(pending),
            abort: AtomicBool::new(false),
            panic: Mutex::new(None),
            results: Mutex::new(Vec::with_capacity(pending)),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            watchdog,
        }
    }

    /// Record worker `who`'s heartbeat: `Some(ms)` marks a task begun
    /// that many ms after the epoch, `None` marks the worker idle.
    fn beat(&self, who: usize, at_ms: Option<u64>) {
        if let Some((_, slots)) = &self.watchdog {
            if let Some(slot) = slots.get(who) {
                slot.store(at_ms.map_or(0, |ms| ms + 1), Ordering::Relaxed);
            }
        }
    }

    /// Milliseconds since the watchdog epoch (0 when the watchdog is
    /// off).
    fn epoch_ms(&self) -> u64 {
        self.watchdog
            .as_ref()
            .map_or(0, |(epoch, _)| epoch.elapsed().as_millis() as u64)
    }

    /// Next chunk for `who`: own deque (LIFO) → injector (FIFO) →
    /// steal from a sibling (FIFO). `None` means every queue is empty
    /// right now. The second tuple field reports whether the chunk was
    /// stolen.
    fn find_work(&self, who: usize) -> Option<(Chunk, bool)> {
        if let Some(c) = self.deques[who].lock().expect("deque poisoned").pop_back() {
            return Some((c, false));
        }
        if let Some(c) = self.injector.lock().expect("injector poisoned").pop_front() {
            return Some((c, false));
        }
        let n = self.deques.len();
        for off in 1..n {
            let victim = (who + off) % n;
            if let Some(c) = self.deques[victim]
                .lock()
                .expect("deque poisoned")
                .pop_front()
            {
                return Some((c, true));
            }
        }
        None
    }

    /// Mark one chunk finished; ring the bell when the batch is done.
    fn finish_chunk(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last chunk: wake every parked worker so the batch drains.
            let _guard = self.injector.lock().expect("injector poisoned");
            self.bell.notify_all();
        }
    }

    /// Record the first panic and abort the batch.
    fn poison(&self, payload: Box<dyn Any + Send>) {
        {
            let mut slot = self.panic.lock().expect("panic slot poisoned");
            slot.get_or_insert(payload);
        }
        self.abort.store(true, Ordering::Release);
        let _guard = self.injector.lock().expect("injector poisoned");
        self.bell.notify_all();
    }
}

/// One worker's batch loop. `prof_root` is the spawning thread's open
/// `pq-prof` span path, so worker time folds under the phase that
/// launched the batch (queue-wait shows up as `par:wait`, chunk
/// execution as `par:run`).
// pq-lint: hot-root(par:worker) -- the steal-loop every parallel cell executes inside
fn worker_loop<T, R>(
    id: usize,
    shared: &Shared<R>,
    items: &[T],
    f: &(dyn Fn(usize, &T) -> R + Sync),
    prof_root: Option<&str>,
) where
    T: Sync,
    R: Send,
{
    let traced = pq_obs::enabled(Level::Info);
    let tracer = pq_obs::tracer();
    let pid = if traced {
        tracer.new_pid(&format!("pq-par worker-{id}"))
    } else {
        0
    };
    let started_ns = tracer.wall_ns();
    let mut local_tasks = 0u64;
    let mut local_steals = 0u64;
    let mut local_chunks = 0u64;
    pq_prof::set_lane(id + 1);

    {
        let _worker = pq_prof::worker_span(prof_root, "par:worker");
        loop {
            if shared.abort.load(Ordering::Acquire) {
                break;
            }
            match shared.find_work(id) {
                Some((chunk, stolen)) => {
                    if stolen {
                        local_steals += 1;
                    }
                    local_chunks += 1;
                    let t0 = tracer.wall_ns();
                    let _run_span = pq_prof::span("par:run");
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        let slice = &items[chunk.start..chunk.end];
                        // pq-lint: allow(hot-loop-alloc) -- the chunk's owned output, handed to result assembly; one alloc amortized over chunk.len() tasks
                        let mut out = Vec::with_capacity(chunk.len());
                        for (i, item) in (chunk.start..chunk.end).zip(slice) {
                            crate::deadline::task_started();
                            shared.beat(id, Some(shared.epoch_ms()));
                            out.push(f(i, item));
                        }
                        out
                    }));
                    shared.beat(id, None);
                    match run {
                        Ok(out) => {
                            local_tasks += out.len() as u64;
                            shared
                                .results
                                .lock()
                                .expect("results poisoned")
                                .push((chunk.start, out));
                            if pq_obs::enabled(Level::Debug) {
                                tracer.span(
                                    Level::Debug,
                                    "par",
                                    // pq-lint: allow(hot-loop-alloc) -- behind the enabled(Debug) gate; off in every measured configuration
                                    format!("chunk {}..{}", chunk.start, chunk.end),
                                    pid,
                                    0,
                                    t0,
                                    tracer.wall_ns(),
                                    // pq-lint: allow(hot-loop-alloc) -- behind the enabled(Debug) gate; off in every measured configuration
                                    vec![
                                        ("items", ArgValue::U64(chunk.len() as u64)),
                                        ("stolen", ArgValue::U64(u64::from(stolen))),
                                    ],
                                );
                            }
                            shared.finish_chunk();
                        }
                        Err(payload) => {
                            shared.finish_chunk();
                            shared.poison(payload);
                            break;
                        }
                    }
                }
                None => {
                    // Nothing queued anywhere. Either the batch is done, or
                    // chunks are in flight on siblings — park until the bell.
                    let _wait_span = pq_prof::span("par:wait");
                    let guard = shared.injector.lock().expect("injector poisoned");
                    if shared.pending.load(Ordering::Acquire) == 0
                        || shared.abort.load(Ordering::Acquire)
                    {
                        break;
                    }
                    if guard.is_empty() {
                        // Timeout bounds any lost-wakeup window; spurious
                        // wakeups just re-run the scan above.
                        let _ = shared
                            .bell
                            .wait_timeout(guard, PARK)
                            .expect("injector poisoned");
                    }
                }
            }
        }
    }

    shared.tasks.fetch_add(local_tasks, Ordering::Relaxed);
    shared.steals.fetch_add(local_steals, Ordering::Relaxed);
    // Per-worker balance counters (scheduler-skew visibility in
    // BENCH_obs.json); formatted names carry the worker id as a label.
    let reg = pq_obs::registry();
    reg.counter_add(&format!("par.worker_tasks{{worker=\"{id}\"}}"), local_tasks);
    reg.counter_add(
        &format!("par.worker_steals{{worker=\"{id}\"}}"),
        local_steals,
    );
    pq_prof::flush_thread();
    pq_prof::set_lane(0);
    if traced {
        tracer.span(
            Level::Info,
            "par",
            format!("worker-{id}"),
            pid,
            0,
            started_ns,
            tracer.wall_ns(),
            vec![
                ("tasks", ArgValue::U64(local_tasks)),
                ("chunks", ArgValue::U64(local_chunks)),
                ("steals", ArgValue::U64(local_steals)),
            ],
        );
    }
}

/// Supervision thread for one batch, spawned only when a cell
/// deadline is configured: polls every worker's heartbeat and reports
/// (once per stall, through pq-ckpt's warn sink + the
/// `par.watchdog_stalls` counter) any worker whose *current* task has
/// overrun the budget. Enforcement stays cooperative — the overrunning
/// cell quarantines itself at its next `cell_deadline_exceeded` check —
/// so the watchdog's job is visibility, not preemption.
fn watchdog_loop<R>(shared: &Shared<R>, timeout_ms: u64) {
    let quantum = Duration::from_millis((timeout_ms / 4).clamp(5, 200));
    let workers = shared.deques.len();
    let mut warned = vec![false; workers];
    loop {
        if shared.pending.load(Ordering::Acquire) == 0 || shared.abort.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(quantum);
        let Some((_, slots)) = &shared.watchdog else {
            return;
        };
        let now = shared.epoch_ms();
        for (who, slot) in slots.iter().enumerate() {
            let beat = slot.load(Ordering::Relaxed);
            let Some(flag) = warned.get_mut(who) else {
                continue;
            };
            if beat == 0 {
                *flag = false;
                continue;
            }
            let elapsed = now.saturating_sub(beat - 1);
            if elapsed > timeout_ms && !*flag {
                *flag = true;
                pq_ckpt::warn(&format!(
                    "watchdog: pq-par worker {who} has spent {elapsed} ms on one cell \
                     (budget {timeout_ms} ms); the cell will be quarantined at its next \
                     cancellation point"
                ));
                pq_obs::registry().counter_add("par.watchdog_stalls", 1);
            }
        }
    }
}

/// Run `f` over `items[0..n]` on `workers` threads, returning outputs
/// in item order. The serial fast path (`workers <= 1` or `n <= 1`)
/// runs on the calling thread with zero scheduling overhead — and is
/// the reference the parallel path is bit-identical to.
pub(crate) fn execute<T, R>(
    workers: usize,
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        // The serial reference path still stamps task starts so the
        // per-cell deadline applies identically at PQ_JOBS=1.
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| {
                crate::deadline::task_started();
                f(i, t)
            })
            .collect();
    }

    let shared: Shared<R> = Shared::new(workers, chunks_for(n, workers));
    let fref: &(dyn Fn(usize, &T) -> R + Sync) = &f;
    // Workers inherit the caller's open profiler span path so their
    // time folds under the launching phase in the collapsed output.
    let prof_root = pq_prof::current_path();
    std::thread::scope(|scope| {
        for id in 0..workers {
            let shared = &shared;
            let prof_root = prof_root.as_deref();
            std::thread::Builder::new()
                .name(format!("pq-par-{id}"))
                .spawn_scoped(scope, move || {
                    worker_loop(id, shared, items, fref, prof_root)
                })
                .expect("spawn pq-par worker");
        }
        if let Some(timeout_ms) = crate::deadline::cell_timeout_ms() {
            let shared = &shared;
            std::thread::Builder::new()
                .name("pq-par-watchdog".to_string())
                .spawn_scoped(scope, move || watchdog_loop(shared, timeout_ms))
                .expect("spawn pq-par watchdog");
        }
    });

    let reg = pq_obs::registry();
    reg.counter_add("par.tasks", shared.tasks.load(Ordering::Relaxed));
    reg.counter_add("par.steals", shared.steals.load(Ordering::Relaxed));

    if let Some(payload) = shared.panic.lock().expect("panic slot poisoned").take() {
        resume_unwind(payload);
    }

    let mut parts = shared.results.into_inner().expect("results poisoned");
    parts.sort_unstable_by_key(|(start, _)| *start);
    let out: Vec<R> = parts.into_iter().flat_map(|(_, v)| v).collect();
    debug_assert_eq!(out.len(), n, "every item produced exactly one output");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly_once() {
        for n in [0usize, 1, 2, 7, 80, 1000] {
            for workers in [1usize, 2, 4, 8] {
                let chunks = chunks_for(n, workers);
                let total: usize = chunks.iter().map(|c| c.len()).sum();
                assert_eq!(total, n, "n={n} workers={workers}");
                for w in chunks.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                }
                if n > 0 {
                    assert_eq!(chunks[0].start, 0);
                    assert_eq!(chunks.last().unwrap().end, n);
                }
            }
        }
    }

    #[test]
    fn execute_preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = execute(4, &items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3 + 1
        });
        assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn steals_rebalance_skew() {
        // A wildly skewed cost profile: item 0 is ~1000× the rest.
        // The batch must still complete with every output in place.
        let items: Vec<u32> = (0..64).collect();
        let out = execute(4, &items, |_, &x| {
            let spins = if x == 0 { 200_000 } else { 200 };
            let mut acc = x as u64;
            for i in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (x, acc)
        });
        assert_eq!(out.len(), 64);
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x as usize, i);
        }
    }
}
