//! Per-cell wall-clock deadlines (`PQ_CELL_TIMEOUT_MS`).
//!
//! A hung or pathologically slow cell must not hang the sweep: the
//! pool stamps a thread-local start time as it begins each task, and
//! long-running cells poll [`cell_deadline_exceeded`] at their
//! cancellation points (between retry attempts in
//! `StimulusSet::build_with_faults`). A cell over budget returns an
//! error and is routed through pq-fault's quarantine machinery —
//! accounted as `cells_timed_out` in the manifest — instead of
//! blocking the grid.
//!
//! Wall-clock time here never feeds simulated data; with the knob
//! unset (the default) the whole module is inert and the determinism
//! contract is untouched. With it set, which cells exceed the budget
//! depends on the machine — that is the documented trade: use it for
//! liveness in long unattended sweeps, not for baseline digests.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Sentinel: no programmatic override installed.
const NO_OVERRIDE: u64 = u64::MAX;

static TIMEOUT_OVERRIDE: AtomicU64 = AtomicU64::new(NO_OVERRIDE);

fn env_timeout() -> Option<u64> {
    static CACHE: OnceLock<Option<u64>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        let raw = pq_obs::env::var("PQ_CELL_TIMEOUT_MS")?;
        match raw.parse::<u64>() {
            Ok(0) => None,
            Ok(ms) => Some(ms),
            Err(_) => {
                pq_obs::tracer().warn(
                    "par",
                    // pq-lint: allow(hot-alloc) -- inside a OnceLock init: runs at most once per process, and only on a bad knob
                    format!(
                        "unparsable PQ_CELL_TIMEOUT_MS={raw:?} (want milliseconds >= 1, \
                         or 0 to disable); the cell watchdog stays off"
                    ),
                );
                None
            }
        }
    })
}

/// The effective per-cell deadline in milliseconds: a
/// [`set_cell_timeout_ms`] override, else `PQ_CELL_TIMEOUT_MS`, else
/// `None` (watchdog off).
pub fn cell_timeout_ms() -> Option<u64> {
    match TIMEOUT_OVERRIDE.load(Ordering::Relaxed) {
        NO_OVERRIDE => env_timeout(),
        0 => None,
        ms => Some(ms),
    }
}

/// Override the deadline for the whole process: `Some(0)` disables the
/// watchdog outright, `None` restores `PQ_CELL_TIMEOUT_MS`. For tests
/// and embedding harnesses.
pub fn set_cell_timeout_ms(ms: Option<u64>) {
    TIMEOUT_OVERRIDE.store(ms.unwrap_or(NO_OVERRIDE), Ordering::Relaxed);
}

thread_local! {
    /// When the current pool task started, stamped by the pool on the
    /// executing thread (worker or caller) at each task boundary.
    static TASK_START: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Stamp the start of a task on this thread. Called by the pool for
/// every item, on both the serial fast path and worker threads.
pub(crate) fn task_started() {
    if cell_timeout_ms().is_some() {
        // pq-lint: allow(time) -- deadline enforcement is wall-clock by definition; gated behind PQ_CELL_TIMEOUT_MS and never feeds simulated data
        TASK_START.with(|t| t.set(Some(Instant::now())));
    }
}

/// Cooperative cancellation check: `Some(elapsed_ms)` when the current
/// task has exceeded [`cell_timeout_ms`], `None` otherwise (including
/// whenever the watchdog is off). Cheap enough to call between retry
/// attempts; a cell that sees `Some` should abandon work and report a
/// quarantineable error.
pub fn cell_deadline_exceeded() -> Option<u64> {
    let budget = cell_timeout_ms()?;
    let start = TASK_START.with(Cell::get)?;
    let elapsed = start.elapsed().as_millis() as u64;
    if elapsed > budget {
        Some(elapsed)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test: the override is process-global, so the scenarios must
    // not interleave across test threads.
    #[test]
    fn override_precedence_stamping_and_budget() {
        // Override precedence and explicit disable.
        set_cell_timeout_ms(Some(250));
        assert_eq!(cell_timeout_ms(), Some(250));
        set_cell_timeout_ms(Some(0));
        assert_eq!(cell_timeout_ms(), None);

        // Off means never exceeded, even with a stale stamp.
        set_cell_timeout_ms(Some(3_600_000));
        task_started();
        set_cell_timeout_ms(Some(0));
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert_eq!(cell_deadline_exceeded(), None);

        // Under budget: no trip. Over budget: elapsed reported.
        set_cell_timeout_ms(Some(3_600_000));
        task_started();
        assert_eq!(cell_deadline_exceeded(), None, "fresh task is under budget");
        set_cell_timeout_ms(Some(1));
        std::thread::sleep(std::time::Duration::from_millis(5));
        let over = cell_deadline_exceeded();
        assert!(over.is_some_and(|ms| ms >= 2), "task over budget: {over:?}");
        set_cell_timeout_ms(None);
    }
}
