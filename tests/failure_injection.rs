//! Failure-injection integration tests: the pipeline must stay
//! correct (not just fast) under pathological network conditions.

use perceiving_quic::prelude::*;
use perceiving_quic::sim::NetworkConfig;

fn custom_net(up_bps: u64, down_bps: u64, rtt_ms: u64, loss: f64, queue_ms: u64) -> NetworkConfig {
    NetworkConfig {
        kind: NetworkKind::Mss, // label only
        up_bps,
        down_bps,
        min_rtt: SimDuration::from_millis(rtt_ms),
        loss,
        queue_ms,
    }
}

#[test]
fn extreme_loss_still_completes() {
    // 20 % loss each way: far beyond the paper's networks.
    let net = custom_net(1_000_000, 2_000_000, 200, 0.20, 200);
    let site = web::site("apache.org").unwrap();
    for proto in [Protocol::Tcp, Protocol::TcpPlus, Protocol::Quic] {
        let opts = LoadOptions {
            horizon: SimDuration::from_secs(600),
            ..LoadOptions::default()
        };
        let r = load_page(&site, &net, proto, 3, &opts);
        assert!(r.complete, "{} did not survive 20% loss", proto.label());
        assert!(r.retransmits > 0);
        assert!(
            r.metrics.well_ordered(),
            "{}: {:?}",
            proto.label(),
            r.metrics
        );
    }
}

#[test]
fn tiny_queue_forces_drops_but_not_livelock() {
    // A 1 ms queue at 10 Mbps ≈ one packet of buffer.
    let net = custom_net(2_000_000, 10_000_000, 40, 0.0, 1);
    let site = web::site("gov.uk").unwrap();
    for proto in [Protocol::Tcp, Protocol::Quic] {
        let r = load_page(&site, &net, proto, 5, &LoadOptions::default());
        assert!(
            r.complete,
            "{}: starved by a one-packet queue",
            proto.label()
        );
    }
}

#[test]
fn very_slow_link_makes_progress() {
    // 64 kbit/s modem territory with satellite latency.
    let net = custom_net(64_000, 64_000, 1200, 0.02, 400);
    let site = web::site("apache.org").unwrap();
    let opts = LoadOptions {
        horizon: SimDuration::from_secs(3600),
        ..LoadOptions::default()
    };
    let r = load_page(&site, &net, Protocol::Quic, 7, &opts);
    assert!(r.complete, "modem load incomplete");
    // ~110 kB over 64 kbps ≈ ≥ 14 s.
    assert!(r.metrics.plt_ms > 10_000.0, "plt {:?}", r.metrics.plt_ms);
}

#[test]
fn horizon_cut_produces_partial_but_sane_metrics() {
    // Horizon far too small for MSS: the load must report incomplete
    // with monotone partial metrics instead of hanging or panicking.
    let net = NetworkKind::Mss.config();
    let site = web::site("nytimes.com").unwrap();
    let opts = LoadOptions {
        horizon: SimDuration::from_secs(3),
        ..LoadOptions::default()
    };
    let r = load_page(&site, &net, Protocol::TcpPlus, 9, &opts);
    assert!(!r.complete);
    assert!(r.plt <= SimTime::from_secs(4));
    assert!(r.metrics.fvc_ms <= r.metrics.lvc_ms + 1e-6);
}

#[test]
fn zero_processing_ablation_still_works() {
    let net = NetworkKind::Dsl.config();
    let site = web::site("wikipedia.org").unwrap();
    let opts = LoadOptions {
        processing_scale: 0.0,
        ..LoadOptions::default()
    };
    let with = load_page(&site, &net, Protocol::Quic, 11, &LoadOptions::default());
    let without = load_page(&site, &net, Protocol::Quic, 11, &opts);
    assert!(without.complete);
    assert!(
        without.metrics.si_ms < with.metrics.si_ms,
        "client processing must add time: {} !< {}",
        without.metrics.si_ms,
        with.metrics.si_ms
    );
}

#[test]
fn asymmetric_uplink_starvation() {
    // A nearly-dead uplink (16 kbps) chokes requests and ACKs; loads
    // must still finish.
    let net = custom_net(16_000, 5_000_000, 100, 0.0, 300);
    let site = web::site("wordpress.com").unwrap();
    let opts = LoadOptions {
        horizon: SimDuration::from_secs(600),
        ..LoadOptions::default()
    };
    for proto in [Protocol::TcpPlus, Protocol::Quic] {
        let r = load_page(&site, &net, proto, 13, &opts);
        assert!(r.complete, "{}: uplink starvation", proto.label());
    }
}
