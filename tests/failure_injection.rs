//! Failure-injection integration tests: the pipeline must stay
//! correct (not just fast) under pathological network conditions.

use perceiving_quic::prelude::*;
use perceiving_quic::sim::NetworkConfig;

fn custom_net(up_bps: u64, down_bps: u64, rtt_ms: u64, loss: f64, queue_ms: u64) -> NetworkConfig {
    NetworkConfig {
        kind: NetworkKind::Mss, // label only
        up_bps,
        down_bps,
        min_rtt: SimDuration::from_millis(rtt_ms),
        loss,
        queue_ms,
    }
}

#[test]
fn extreme_loss_still_completes() {
    // 20 % loss each way: far beyond the paper's networks.
    let net = custom_net(1_000_000, 2_000_000, 200, 0.20, 200);
    let site = web::site("apache.org").unwrap();
    for proto in [Protocol::Tcp, Protocol::TcpPlus, Protocol::Quic] {
        let opts = LoadOptions {
            horizon: SimDuration::from_secs(600),
            ..LoadOptions::default()
        };
        let r = load_page(&site, &net, proto, 3, &opts);
        assert!(r.complete, "{} did not survive 20% loss", proto.label());
        assert!(r.retransmits > 0);
        assert!(
            r.metrics.well_ordered(),
            "{}: {:?}",
            proto.label(),
            r.metrics
        );
    }
}

#[test]
fn tiny_queue_forces_drops_but_not_livelock() {
    // A 1 ms queue at 10 Mbps ≈ one packet of buffer.
    let net = custom_net(2_000_000, 10_000_000, 40, 0.0, 1);
    let site = web::site("gov.uk").unwrap();
    for proto in [Protocol::Tcp, Protocol::Quic] {
        let r = load_page(&site, &net, proto, 5, &LoadOptions::default());
        assert!(
            r.complete,
            "{}: starved by a one-packet queue",
            proto.label()
        );
    }
}

#[test]
fn very_slow_link_makes_progress() {
    // 64 kbit/s modem territory with satellite latency.
    let net = custom_net(64_000, 64_000, 1200, 0.02, 400);
    let site = web::site("apache.org").unwrap();
    let opts = LoadOptions {
        horizon: SimDuration::from_secs(3600),
        ..LoadOptions::default()
    };
    let r = load_page(&site, &net, Protocol::Quic, 7, &opts);
    assert!(r.complete, "modem load incomplete");
    // ~110 kB over 64 kbps ≈ ≥ 14 s.
    assert!(r.metrics.plt_ms > 10_000.0, "plt {:?}", r.metrics.plt_ms);
}

#[test]
fn horizon_cut_produces_partial_but_sane_metrics() {
    // Horizon far too small for MSS: the load must report incomplete
    // with monotone partial metrics instead of hanging or panicking.
    let net = NetworkKind::Mss.config();
    let site = web::site("nytimes.com").unwrap();
    let opts = LoadOptions {
        horizon: SimDuration::from_secs(3),
        ..LoadOptions::default()
    };
    let r = load_page(&site, &net, Protocol::TcpPlus, 9, &opts);
    assert!(!r.complete);
    assert!(r.plt <= SimTime::from_secs(4));
    assert!(r.metrics.fvc_ms <= r.metrics.lvc_ms + 1e-6);
}

#[test]
fn zero_processing_ablation_still_works() {
    let net = NetworkKind::Dsl.config();
    let site = web::site("wikipedia.org").unwrap();
    let opts = LoadOptions {
        processing_scale: 0.0,
        ..LoadOptions::default()
    };
    let with = load_page(&site, &net, Protocol::Quic, 11, &LoadOptions::default());
    let without = load_page(&site, &net, Protocol::Quic, 11, &opts);
    assert!(without.complete);
    assert!(
        without.metrics.si_ms < with.metrics.si_ms,
        "client processing must add time: {} !< {}",
        without.metrics.si_ms,
        with.metrics.si_ms
    );
}

// ---------------------------------------------------------------------------
// pq-fault spec-driven cases: the injector is threaded explicitly via
// `LoadOptions::faults` / `build_with_faults` (never the process
// global, so tests cannot interfere with each other).
// ---------------------------------------------------------------------------

use perceiving_quic::fault::FaultPlan;
use perceiving_quic::study::StimulusSet;
use std::sync::Arc;

fn plan(spec: &str) -> Arc<FaultPlan> {
    Arc::new(FaultPlan::parse(spec).expect("valid fault spec"))
}

#[test]
fn burst_loss_and_flap_mid_load_all_five_stacks() {
    // Gilbert–Elliott burst loss plus a 300 ms link flap mid-load:
    // every protocol stack must either finish the page or report a
    // clean incomplete load — and the visual metrics must stay
    // well-ordered either way. (At grid level an incomplete load is
    // retried and eventually quarantined; here we assert the per-load
    // contract the retry policy builds on.)
    let faults = plan("seed=11;gel:pgb=0.02,pbg=0.3,bad=0.4;flap:at=800,dur=300");
    let net = NetworkKind::Dsl.config();
    let site = web::site("apache.org").unwrap();
    for proto in Protocol::ALL {
        let opts = LoadOptions {
            horizon: SimDuration::from_secs(600),
            faults: Some(faults.clone()),
            ..LoadOptions::default()
        };
        let r = load_page(&site, &net, proto, 21, &opts);
        assert!(
            r.metrics.well_ordered(),
            "{} under burst loss + flap: {:?}",
            proto.label(),
            r.metrics
        );
        assert!(
            r.complete || r.metrics.fvc_ms >= 0.0,
            "{}: incomplete load must still carry sane partial metrics",
            proto.label()
        );
    }
}

#[test]
fn handshake_flight_loss_recovers_on_every_stack() {
    // hs:p=1 drops the *first client flight* of every connection; the
    // retransmission machinery (SYN backoff / QUIC RTO) must bring all
    // five stacks back without help.
    let faults = plan("hs:p=1");
    let net = NetworkKind::Dsl.config();
    let site = web::site("gov.uk").unwrap();
    for proto in Protocol::ALL {
        let opts = LoadOptions {
            horizon: SimDuration::from_secs(600),
            faults: Some(faults.clone()),
            ..LoadOptions::default()
        };
        let r = load_page(&site, &net, proto, 23, &opts);
        assert!(
            r.complete,
            "{}: lost handshake flight never recovered",
            proto.label()
        );
        assert!(r.metrics.well_ordered(), "{}", proto.label());
        // Recovery costs at least one retransmission timeout.
        let clean = load_page(
            &site,
            &net,
            proto,
            23,
            &LoadOptions {
                horizon: SimDuration::from_secs(600),
                ..LoadOptions::default()
            },
        );
        assert!(
            r.metrics.plt_ms > clean.metrics.plt_ms,
            "{}: dropped flight should cost time ({} !> {})",
            proto.label(),
            r.metrics.plt_ms,
            clean.metrics.plt_ms
        );
    }
}

#[test]
fn handshake_flight_loss_recovers_through_the_proxy() {
    // hs:p=1 drops the first client flight of *every* connection —
    // the browser's H3 connection to the proxy AND each H2 leg the
    // proxy opens towards the origins (the clauses apply independently
    // per path segment). Both tiers must retransmit their way back.
    let faults = plan("hs:p=1");
    let net = NetworkKind::Dsl.config();
    let site = web::site("gov.uk").unwrap();
    for proto in [Protocol::QuicEdge, Protocol::H2Edge] {
        let opts = LoadOptions {
            horizon: SimDuration::from_secs(600),
            faults: Some(faults.clone()),
            ..LoadOptions::default()
        };
        let r = load_page(&site, &net, proto, 23, &opts);
        assert!(
            r.complete,
            "{}: lost handshake flight never recovered through the proxy",
            proto.label()
        );
        assert!(r.metrics.well_ordered(), "{}", proto.label());
        let clean = load_page(
            &site,
            &net,
            proto,
            23,
            &LoadOptions {
                horizon: SimDuration::from_secs(600),
                ..LoadOptions::default()
            },
        );
        assert!(
            r.metrics.plt_ms > clean.metrics.plt_ms,
            "{}: dropped flights should cost time ({} !> {})",
            proto.label(),
            r.metrics.plt_ms,
            clean.metrics.plt_ms
        );
    }
}

#[test]
fn faulted_quic_edge_study_digest_identical_across_jobs_1_4() {
    // The chaos contract extends to the proxy stack: a faulted
    // QUIC-EDGE grid (plus its A/B partner) must produce the same
    // study digest at PQ_JOBS=1 and 4 — edge pool decisions, leg
    // handshake drops and burst loss are all keyed by derived seeds,
    // never by worker interleaving.
    let spec = "seed=5;gel:pgb=0.02,pbg=0.3,bad=0.35;hs:p=0.2;stall:p=0.05,ms=400";
    let sites = vec![
        web::site("apache.org").unwrap(),
        web::site("wikipedia.org").unwrap(),
    ];
    let stacks = {
        let mut s = vec![Protocol::Quic, Protocol::QuicEdge];
        s.sort();
        s
    };
    let pairs = perceiving_quic::transport::Protocol::pairs_for(&stacks);
    let pipeline = |jobs| {
        perceiving_quic::par::set_jobs(Some(jobs));
        let set = StimulusSet::build_with_faults(
            &sites,
            &[NetworkKind::Dsl, NetworkKind::Lte],
            &stacks,
            2,
            13,
            Some(plan(spec)),
        );
        let digest = pq_bench::manifest::study_digest(&perceiving_quic::study::run_study_with(
            &set, &pairs, &stacks, 13,
        ));
        perceiving_quic::par::set_jobs(None);
        (set, digest)
    };
    let (serial_set, serial_digest) = pipeline(1);
    let (par_set, par_digest) = pipeline(4);
    assert_eq!(serial_set.quarantined(), par_set.quarantined());
    assert_eq!(serial_set.runs_retried(), par_set.runs_retried());
    assert_eq!(
        serial_digest, par_digest,
        "faulted QUIC-EDGE digest diverged across worker counts"
    );
}

#[test]
fn grid_cells_complete_or_quarantine_under_faults() {
    // Moderate fault mix over a small grid: every cell must either
    // survive (valid stimulus present) or be quarantined — never lost
    // silently, never a panic.
    let faults = plan("seed=3;gel:pgb=0.01,pbg=0.3,bad=0.3;stall:p=0.05,ms=800");
    let sites = vec![
        web::site("apache.org").unwrap(),
        web::site("gov.uk").unwrap(),
    ];
    let networks = [NetworkKind::Dsl, NetworkKind::Lte];
    let protocols = [Protocol::Tcp, Protocol::Quic];
    let set = StimulusSet::build_with_faults(&sites, &networks, &protocols, 2, 5, Some(faults));
    for (si, site) in sites.iter().enumerate() {
        for net in networks {
            for proto in protocols {
                let present = set.get(si as u16, net, proto).is_some();
                let quarantined = set.quarantined().iter().any(|q| {
                    q.site == site.name && q.network == net.name() && q.protocol == proto.label()
                });
                assert!(
                    present || quarantined,
                    "{}/{}/{} vanished without quarantine",
                    site.name,
                    net.name(),
                    proto.label()
                );
                if present {
                    let s = set.get(si as u16, net, proto).unwrap();
                    assert!(s.metrics.well_ordered());
                }
            }
        }
    }
}

#[test]
fn total_truncation_quarantines_the_grid_but_study_survives() {
    // trunc:p=1 truncates every response body: no load can ever
    // complete, so the retry budget drains and *every* cell is
    // quarantined — and the downstream study must still run on the
    // empty set instead of panicking.
    let faults = plan("trunc:p=1,frac=0.3");
    let sites = vec![web::site("apache.org").unwrap()];
    let set = StimulusSet::build_with_faults(
        &sites,
        &[NetworkKind::Dsl],
        &[Protocol::Tcp, Protocol::Quic],
        2,
        7,
        Some(faults),
    );
    assert_eq!(set.quarantined().len(), 2, "{:?}", set.quarantined());
    assert!(set.iter().next().is_none(), "no cell can survive trunc:p=1");
    assert!(set.runs_retried() > 0, "retries must be recorded");
    // Graceful degradation: the studies vote on nothing, but run.
    let data = run_study(&set, 7);
    assert!(data.ab.is_empty());
    assert!(data.ratings.is_empty());
}

#[test]
fn faulted_grid_is_deterministic_across_worker_counts() {
    // The fault chains are keyed by (fault seed, cell coordinates), so
    // a faulted build must stay bit-identical at any PQ_JOBS.
    let spec = "seed=9;gel:pgb=0.02,pbg=0.25,bad=0.3;stall:p=0.1,ms=500";
    let sites = vec![web::site("apache.org").unwrap()];
    let build = |jobs| {
        perceiving_quic::par::set_jobs(Some(jobs));
        let set = StimulusSet::build_with_faults(
            &sites,
            &[NetworkKind::Dsl, NetworkKind::Lte],
            &[Protocol::Tcp, Protocol::Quic],
            3,
            13,
            Some(plan(spec)),
        );
        perceiving_quic::par::set_jobs(None);
        set
    };
    let serial = build(1);
    let parallel = build(4);
    assert_eq!(serial.quarantined(), parallel.quarantined());
    assert_eq!(serial.runs_retried(), parallel.runs_retried());
    for s in serial.iter() {
        let c = s.condition;
        let p = parallel
            .get(c.site, c.network, c.protocol)
            .expect("same survivors");
        assert_eq!(s.metrics.plt_ms.to_bits(), p.metrics.plt_ms.to_bits());
        assert_eq!(s.metrics.si_ms.to_bits(), p.metrics.si_ms.to_bits());
        assert_eq!(s.runs, p.runs);
    }
}

#[test]
fn try_load_page_rejects_broken_configs() {
    let site = web::site("apache.org").unwrap();
    let mut net = NetworkKind::Dsl.config();
    net.down_bps = 0;
    let err = web::try_load_page(&site, &net, Protocol::Quic, 1, &LoadOptions::default());
    assert!(err.is_err(), "zero-bandwidth config must be rejected");
    let ok = web::try_load_page(
        &site,
        &NetworkKind::Dsl.config(),
        Protocol::Quic,
        1,
        &LoadOptions::default(),
    );
    assert!(ok.is_ok());
}

#[test]
fn asymmetric_uplink_starvation() {
    // A nearly-dead uplink (16 kbps) chokes requests and ACKs; loads
    // must still finish.
    let net = custom_net(16_000, 5_000_000, 100, 0.0, 300);
    let site = web::site("wordpress.com").unwrap();
    let opts = LoadOptions {
        horizon: SimDuration::from_secs(600),
        ..LoadOptions::default()
    };
    for proto in [Protocol::TcpPlus, Protocol::Quic] {
        let r = load_page(&site, &net, proto, 13, &opts);
        assert!(r.complete, "{}: uplink starvation", proto.label());
    }
}
