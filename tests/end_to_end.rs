//! Cross-crate integration tests: the full pipeline from emulated
//! packets to study votes, with the paper's qualitative claims as
//! assertions.

use perceiving_quic::prelude::*;
use perceiving_quic::study::{self, ab_shares, Group};

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

/// Shared mini experiment for the study-level tests (computed once —
/// stimulus production is the expensive part).
fn mini_study() -> (StimulusSet, StudyData) {
    let sites: Vec<Website> = ["wikipedia.org", "gov.uk", "apache.org", "wordpress.com"]
        .iter()
        .map(|n| web::site(n).expect("corpus"))
        .collect();
    let stimuli = StimulusSet::build(&sites, &NetworkKind::ALL, &Protocol::ALL, 5, 99);
    let data = run_study(&stimuli, 99);
    (stimuli, data)
}

#[test]
fn claim_quic_one_rtt_ahead_in_first_visual_change() {
    // §3: the 1-RTT handshake advantage is the primary factor in
    // non-lossy environments.
    let site = web::site("wikipedia.org").unwrap();
    for kind in [NetworkKind::Dsl, NetworkKind::Lte] {
        let net = kind.config();
        let fvc = |p: Protocol| {
            median(
                (0..5)
                    .map(|s| {
                        load_page(&site, &net, p, s, &LoadOptions::default())
                            .metrics
                            .fvc_ms
                    })
                    .collect(),
            )
        };
        let gap = fvc(Protocol::Tcp) - fvc(Protocol::Quic);
        let rtt = net.min_rtt.as_millis_f64();
        assert!(
            gap > 0.4 * rtt,
            "{kind:?}: FVC gap {gap:.0} ms vs RTT {rtt:.0} ms"
        );
    }
}

#[test]
fn claim_tcp_plus_retransmits_more_on_da2gc() {
    // §4.3: "we always found more retransmissions for TCP+ (on avg
    // ×1.5 but up to ×4.8)".
    let net = NetworkKind::Da2gc.config();
    let site = web::site("gov.uk").unwrap();
    let retx = |p: Protocol| -> f64 {
        (0..6)
            .map(|s| load_page(&site, &net, p, 50 + s, &LoadOptions::default()).retransmits)
            .sum::<u64>() as f64
            / 6.0
    };
    let tcp = retx(Protocol::Tcp);
    let plus = retx(Protocol::TcpPlus);
    assert!(
        plus > tcp * 1.2,
        "TCP+ retransmissions {plus:.0} !> 1.2 × TCP {tcp:.0}"
    );
}

#[test]
fn full_pipeline_produces_paper_shaped_ab_votes() {
    let (_stimuli, data) = mini_study();
    let groups = [Group::Lab, Group::MicroWorker];

    // MSS, QUIC vs TCP: the clearest case — QUIC must win outright.
    let mss = ab_shares(
        &data.ab,
        NetworkKind::Mss,
        (Protocol::Quic, Protocol::Tcp),
        &groups,
    )
    .expect("votes exist");
    assert!(mss.first > 0.6, "QUIC share on MSS: {:.2}", mss.first);
    assert!(mss.first > mss.second * 2.0);

    // DSL is harder to call than MSS: more "no difference" and more
    // replays (§4.3: replays express the difficulty of spotting a
    // difference in the DSL network).
    let dsl = ab_shares(
        &data.ab,
        NetworkKind::Dsl,
        (Protocol::Quic, Protocol::Tcp),
        &groups,
    )
    .expect("votes exist");
    assert!(
        dsl.no_diff > mss.no_diff,
        "DSL no-diff {:.2} !> MSS no-diff {:.2}",
        dsl.no_diff,
        mss.no_diff
    );
    assert!(
        dsl.avg_replays > mss.avg_replays,
        "DSL replays {:.2} !> MSS replays {:.2}",
        dsl.avg_replays,
        mss.avg_replays
    );
}

#[test]
fn full_pipeline_rating_study_shapes() {
    let (_stimuli, data) = mini_study();

    // Plane ratings are poor; work/free-time ratings are good
    // (Figure 5's most robust feature).
    let mean = |env: study::Environment| {
        let v: Vec<f64> = data
            .ratings
            .iter()
            .filter(|r| r.valid && r.environment == env && r.group == Group::MicroWorker)
            .map(|r| r.speed)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let work = mean(study::Environment::Work);
    let plane = mean(study::Environment::Plane);
    assert!(work > 45.0, "work ratings {work:.1}");
    assert!(plane < 45.0, "plane ratings {plane:.1}");
    assert!(work - plane > 10.0, "gap {:.1}", work - plane);
}

#[test]
fn speed_index_correlates_best_and_plt_worst_on_slow_networks() {
    // Figure 6's takeaway. Evaluated on MSS where the paper's contrast
    // is sharpest (PLT ≈ 0 correlation there).
    // Spread in size matters: mean votes must vary by speed across
    // sites for the correlation to be measurable (the full corpus has
    // a 50 kB – 5 MB spread; mirror that here).
    let sites: Vec<Website> = [
        "wikipedia.org",
        "gov.uk",
        "apache.org",
        "wordpress.com",
        "spotify.com",
        "etsy.com",
        "nytimes.com",
        "cnn.com",
        "w3.org",
        "gravatar.com",
    ]
    .iter()
    .map(|n| web::site(n).expect("corpus"))
    .collect();
    let stimuli = StimulusSet::build(&sites, &[NetworkKind::Mss], &[Protocol::Quic], 5, 7);
    let data = perceiving_quic::study::run_study_with(
        &stimuli,
        &[(Protocol::Quic, Protocol::Quic)],
        &[Protocol::Quic],
        7,
    );
    let corr = |m: Metric| {
        perceiving_quic::study::metric_correlation(
            &data.ratings,
            &stimuli,
            NetworkKind::Mss,
            Protocol::Quic,
            m,
            Group::MicroWorker,
            &[study::Environment::Plane],
        )
        .expect("enough sites")
    };
    let si = corr(Metric::Si);
    let plt = corr(Metric::Plt);
    assert!(
        si < -0.45,
        "SI correlation should be strongly negative: {si:.2}"
    );
    assert!(
        si < plt,
        "SI ({si:.2}) must correlate better than PLT ({plt:.2})"
    );
}

#[test]
fn table3_funnel_structure() {
    let (_stimuli, data) = mini_study();
    // Lab is supervised: everyone survives.
    assert_eq!(data.funnel_ab[0].survivors(), 35);
    // µWorker funnels shrink monotonically and end in the paper's
    // ballpark.
    let f = &data.funnel_ab[1];
    assert_eq!(f.recruited, 487);
    for w in f.after.windows(2) {
        assert!(w[1] <= w[0]);
    }
    assert!((200..=270).contains(&f.survivors()), "{}", f.survivors());
    let fr = &data.funnel_rating[1];
    assert_eq!(fr.recruited, 1563);
    assert!((550..=690).contains(&fr.survivors()), "{}", fr.survivors());
}

#[test]
fn determinism_across_the_whole_pipeline() {
    let sites = vec![web::site("apache.org").unwrap()];
    let build = || {
        let stimuli = StimulusSet::build(&sites, &[NetworkKind::Lte], &[Protocol::Quic], 3, 5);
        let data = perceiving_quic::study::run_study_with(
            &stimuli,
            &[(Protocol::Quic, Protocol::Quic)],
            &[Protocol::Quic],
            5,
        );
        data.ratings.iter().map(|r| r.speed).sum::<f64>()
    };
    assert_eq!(build(), build());
}
