//! Cross-crate parallel-determinism suite: the `pq-par` execution
//! engine must never change a single bit of pipeline output.
//!
//! Strategy: run the same pipeline stage with the worker count forced
//! to 1 (the serial reference), 2 and 8 via `pq_par::set_jobs`, and
//! compare outputs **bitwise** (`f64::to_bits`, not approximate
//! equality). Every stage derives its RNG purely from `(seed, cell
//! indices)`, so chunk placement, steal order and worker count are
//! invisible in the data — this suite is the proof.
//!
//! The worker-count override is process-global, so the tests that
//! sweep it serialise on one mutex.

use perceiving_quic::prelude::*;
use pq_study::session::{population, StudyKind};
use std::sync::Mutex;

static JOBS_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` under a forced worker count, restoring auto-detection after.
fn with_jobs<R>(jobs: usize, f: impl FnOnce() -> R) -> R {
    pq_par::set_jobs(Some(jobs));
    let out = f();
    pq_par::set_jobs(None);
    out
}

fn small_sites() -> Vec<Website> {
    ["apache.org", "wikipedia.org"]
        .iter()
        .map(|n| site(n).unwrap())
        .collect()
}

fn assert_stimuli_identical(a: &StimulusSet, b: &StimulusSet) {
    assert_eq!(a.site_names, b.site_names);
    let mut cells = 0;
    for s in a.iter() {
        let c = s.condition;
        let p = b
            .get(c.site, c.network, c.protocol)
            .expect("same cells survive");
        assert_eq!(s.runs, p.runs);
        assert_eq!(s.metrics.fvc_ms.to_bits(), p.metrics.fvc_ms.to_bits());
        assert_eq!(s.metrics.si_ms.to_bits(), p.metrics.si_ms.to_bits());
        assert_eq!(s.metrics.vc85_ms.to_bits(), p.metrics.vc85_ms.to_bits());
        assert_eq!(s.metrics.lvc_ms.to_bits(), p.metrics.lvc_ms.to_bits());
        assert_eq!(s.metrics.plt_ms.to_bits(), p.metrics.plt_ms.to_bits());
        assert_eq!(s.mean_plt_ms.to_bits(), p.mean_plt_ms.to_bits());
        assert_eq!(s.mean_retransmits.to_bits(), p.mean_retransmits.to_bits());
        assert_eq!(s.video_secs.to_bits(), p.video_secs.to_bits());
        cells += 1;
    }
    assert_eq!(cells, b.iter().count());
}

fn assert_studies_identical(a: &StudyData, b: &StudyData) {
    assert_eq!(a.ab.len(), b.ab.len());
    for (x, y) in a.ab.iter().zip(&b.ab) {
        assert_eq!(x.group, y.group);
        assert_eq!(x.participant, y.participant);
        assert_eq!(x.site, y.site);
        assert_eq!(x.network, y.network);
        assert_eq!(x.pair, y.pair);
        assert_eq!(x.choice, y.choice);
        assert_eq!(x.confidence.to_bits(), y.confidence.to_bits());
        assert_eq!(x.replays, y.replays);
        assert_eq!(x.valid, y.valid);
    }
    assert_eq!(a.ratings.len(), b.ratings.len());
    for (x, y) in a.ratings.iter().zip(&b.ratings) {
        assert_eq!(x.group, y.group);
        assert_eq!(x.participant, y.participant);
        assert_eq!(x.site, y.site);
        assert_eq!(x.network, y.network);
        assert_eq!(x.protocol, y.protocol);
        assert_eq!(x.environment, y.environment);
        assert_eq!(x.speed.to_bits(), y.speed.to_bits());
        assert_eq!(x.quality.to_bits(), y.quality.to_bits());
        assert_eq!(x.valid, y.valid);
    }
    for gi in 0..3 {
        assert_eq!(a.funnel_ab[gi], b.funnel_ab[gi]);
        assert_eq!(a.funnel_rating[gi], b.funnel_rating[gi]);
    }
    assert_eq!(a.sessions_ab.len(), b.sessions_ab.len());
    for (x, y) in a.sessions_ab.iter().zip(&b.sessions_ab) {
        assert_eq!(x.conformance, y.conformance);
        assert_eq!(x.secs_per_video.to_bits(), y.secs_per_video.to_bits());
    }
}

#[test]
fn stimulus_set_bit_identical_across_jobs_1_2_8() {
    let _g = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sites = small_sites();
    let build = || {
        StimulusSet::build(
            &sites,
            &[NetworkKind::Dsl, NetworkKind::Mss],
            &[Protocol::Tcp, Protocol::Quic],
            3,
            1910,
        )
    };
    let serial = with_jobs(1, build);
    for jobs in [2usize, 8] {
        let parallel = with_jobs(jobs, build);
        assert_stimuli_identical(&serial, &parallel);
    }
}

#[test]
fn study_data_bit_identical_across_jobs_1_2_8() {
    let _g = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sites = small_sites();
    // The study design touches every network × protocol, so build the
    // full (small-site) grid once per worker count.
    let pipeline = || {
        let stimuli = StimulusSet::build(&sites, &NetworkKind::ALL, &Protocol::ALL, 2, 77);
        let data = run_study(&stimuli, 9);
        (stimuli, data)
    };
    let (serial_stim, serial_data) = with_jobs(1, pipeline);
    for jobs in [2usize, 8] {
        let (par_stim, par_data) = with_jobs(jobs, pipeline);
        assert_stimuli_identical(&serial_stim, &par_stim);
        assert_studies_identical(&serial_data, &par_data);
    }
}

/// Profiling must be strictly off-path: allocation attribution and
/// span collection on vs off may not move a single bit of the study
/// digest, serial or parallel.
#[test]
fn study_digest_identical_with_profiling_on_and_off() {
    let _g = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sites = small_sites();
    let digest = || {
        let stimuli = StimulusSet::build(&sites, &NetworkKind::ALL, &Protocol::ALL, 2, 77);
        pq_bench::manifest::study_digest(&run_study(&stimuli, 9))
    };
    for jobs in [1usize, 4] {
        pq_prof::configure(false, false);
        pq_prof::reset();
        let plain = with_jobs(jobs, digest);
        pq_prof::configure(true, true);
        pq_prof::reset();
        let profiled = with_jobs(jobs, digest);
        pq_prof::configure(false, false);
        pq_prof::reset();
        assert_eq!(
            plain, profiled,
            "profiling perturbed the study digest at jobs={jobs}"
        );
    }
}

/// The edge stacks (terminating proxy + middlebox) ride the same
/// determinism contract: a grid containing all three, studied against
/// their Table-1 partners, must be bit-identical at any worker count.
#[test]
fn edge_study_bit_identical_across_jobs_1_4() {
    let _g = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sites = small_sites();
    let mut stacks = vec![Protocol::Quic, Protocol::TcpPlus];
    stacks.extend(Protocol::EDGE);
    stacks.sort();
    let pairs = Protocol::pairs_for(&stacks);
    let pipeline = || {
        let stimuli = StimulusSet::build(&sites, &[NetworkKind::Dsl], &stacks, 2, 1910);
        let data = perceiving_quic::study::run_study_with(&stimuli, &pairs, &stacks, 1910);
        (stimuli, data)
    };
    let (serial_stim, serial_data) = with_jobs(1, pipeline);
    let (par_stim, par_data) = with_jobs(4, pipeline);
    assert_stimuli_identical(&serial_stim, &par_stim);
    assert_studies_identical(&serial_data, &par_data);
    assert_eq!(
        pq_bench::manifest::study_digest(&serial_data),
        pq_bench::manifest::study_digest(&par_data),
    );
}

/// QUIC-MBX regression pin: the transparent middlebox's early
/// retransmits and RTT split are pure functions of derived seeds, so
/// this exact digest must hold at every worker count. A change here
/// means middlebox behaviour (or its RNG keying) changed — update the
/// constant only with a matching CHANGES.md entry.
#[test]
fn quic_mbx_digest_is_pinned_across_jobs_1_2_8() {
    let _g = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sites = small_sites();
    let stacks = {
        let mut s = vec![Protocol::Quic, Protocol::QuicMbx];
        s.sort();
        s
    };
    let pairs = Protocol::pairs_for(&stacks);
    let digest = || {
        let stimuli = StimulusSet::build(
            &sites,
            &[NetworkKind::Dsl, NetworkKind::Da2gc],
            &stacks,
            2,
            77,
        );
        pq_bench::manifest::study_digest(&perceiving_quic::study::run_study_with(
            &stimuli, &pairs, &stacks, 9,
        ))
    };
    let mut digests = Vec::new();
    for jobs in [1usize, 2, 8] {
        digests.push((jobs, with_jobs(jobs, digest)));
    }
    for (jobs, d) in &digests {
        assert_eq!(
            *d, QUIC_MBX_PINNED_DIGEST,
            "QUIC-MBX digest moved at jobs={jobs}: {d:016x}"
        );
    }
}

/// See [`quic_mbx_digest_is_pinned_across_jobs_1_2_8`].
const QUIC_MBX_PINNED_DIGEST: u64 = 0xbef6_895b_e3c4_5ff6;

#[test]
fn population_bit_identical_across_jobs_1_2_8() {
    let _g = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sample = || population(StudyKind::Rating, Group::MicroWorker, 41);
    let serial = with_jobs(1, sample);
    for jobs in [2usize, 8] {
        let parallel = with_jobs(jobs, sample);
        assert_eq!(serial.len(), parallel.len());
        for (x, y) in serial.iter().zip(&parallel) {
            assert_eq!(x.participant.id, y.participant.id);
            assert_eq!(x.conformance, y.conformance);
            assert_eq!(x.rusher, y.rusher);
            assert_eq!(x.secs_per_video.to_bits(), y.secs_per_video.to_bits());
        }
    }
}
